// DurableLog: the on-disk WAL. Records are appended to numbered segment
// files with CRC-framed records (encoding.go), committers group-commit
// onto a shared fsync, and OpenDir recovers by scanning segments and
// truncating at the first damaged record. docs/wal.md is the normative
// format and recovery description.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pgssi/internal/mvcc"
)

// FsyncMode selects how commit acknowledgement relates to fsync.
type FsyncMode int

const (
	// FsyncBatch (the default) waits a short gather window so concurrent
	// committers piggyback on one fsync, then syncs before acknowledging.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs every flush batch with no gather window. Still
	// group-commits: committers that arrive during an fsync share the
	// next one.
	FsyncAlways
	// FsyncOff writes records asynchronously and never syncs (except on
	// Close). Commit acknowledgement does not wait for the disk at all —
	// preserved for the contention benchmarks, where fsync latency would
	// drown the effect being measured.
	FsyncOff
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncMode parses "always", "batch", or "off".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return FsyncBatch, fmt.Errorf("wal: unknown fsync mode %q (want always, batch, or off)", s)
}

const (
	walMagic          = "PGSSIWAL"
	segmentHeaderSize = 8 + 1 + 8 // magic + version + index

	// DefaultSegmentSize is the rotation threshold for segment files.
	DefaultSegmentSize = 16 << 20
	// DefaultGroupWindow is how long a FsyncBatch flush waits to gather
	// co-committers before syncing.
	DefaultGroupWindow = 200 * time.Microsecond
)

// ErrClosed is returned for appends after Close.
var ErrClosed = errors.New("wal: log closed")

// Config configures a DurableLog.
type Config struct {
	// SegmentSize is the rotation threshold; DefaultSegmentSize if zero.
	SegmentSize int64
	// Fsync is the acknowledgement/fsync policy.
	Fsync FsyncMode
	// GroupWindow is the FsyncBatch gather delay; DefaultGroupWindow if
	// zero.
	GroupWindow time.Duration
	// FS overrides the filesystem; nil means the OS filesystem. Tests
	// inject a FaultFS here.
	FS FS
}

// Ticket is a committer's handle on the flush that will cover its
// record. Wait blocks until that flush (and its fsync, per mode) has
// completed. A nil Ticket (FsyncOff) waits for nothing.
type Ticket struct {
	done chan struct{}
	err  error
}

// Wait blocks until the record is durable per the log's fsync mode.
func (t *Ticket) Wait() error {
	if t == nil {
		return nil
	}
	<-t.done
	return t.err
}

func failedTicket(err error) *Ticket {
	t := &Ticket{done: make(chan struct{}), err: err}
	close(t.done)
	return t
}

// Pending is a record encoded ahead of its commit-sequence assignment.
// The engine prepares it outside all locks, then Enqueue patches the
// final sequence number in and reserves the log position — the only work
// done inside the MVCC commit publication critical section.
type Pending struct {
	frame  []byte
	rec    Record
	ticket *Ticket
	err    error // set at PrepareRecord for records that must not be logged
}

// Err reports whether the record was rejected at PrepareRecord (e.g.
// ErrRecordTooLarge). Callers should check it before entering the
// commit critical section: a rejected record never reaches the log, so
// the commit should fail before it is published, not after.
func (p *Pending) Err() error { return p.err }

// Wait blocks until the enqueued record is durable (see Ticket.Wait).
// It must only be called after Enqueue.
func (p *Pending) Wait() error { return p.ticket.Wait() }

// queued is one record in the flush queue: its encoded frame (what the
// flusher writes), its decoded form (what subscribers receive), and the
// ticket to resolve when its batch is on disk. A barrier entry carries
// no record: it writes nothing, but its ticket resolves only after the
// batch covering everything enqueued before it is on disk
// (SyncBarrier).
type queued struct {
	frame   []byte
	rec     Record
	ticket  *Ticket
	barrier bool
}

// segMeta describes one segment file. size is the published length in
// bytes (header included): everything at or below it has been fully
// written by a completed flush, so concurrent readers may read up to it
// while the flusher appends beyond. lastSeq is the highest record
// sequence in the segment; for sealed segments it is exact (published
// at rotation), for the current segment it trails the flush and is
// never used (GC only considers sealed segments).
type segMeta struct {
	index   uint64
	path    string
	size    int64
	lastSeq uint64
}

// DurableLog is a WAL persisted to segment files. See the package
// comment and docs/wal.md.
type DurableLog struct {
	dir string
	cfg Config
	fs  FS

	mu        sync.Mutex //ssi:lock level=10 name=wal.durable
	cond      *sync.Cond // signals flushing -> false
	segs      []segMeta  // all segments, published sizes
	pending   []queued   // enqueued, not yet grabbed by the flusher
	inflight  []queued   // grabbed by the flusher, not yet published
	subs      []chan Record
	flushing  bool
	closed    bool
	flushErr  error // sticky: first write/sync failure poisons the log
	stats     Stats
	recovered int

	// Checkpoint state, under mu. floorSeq is the GC floor: every
	// record with sequence at or below it has been (or may have been)
	// garbage-collected; SubscribeFrom below it must not pretend to
	// resume. ckptPath/ckptSeq/ckptRecords describe the newest complete
	// checkpoint.
	floorSeq    uint64
	ckptSeq     uint64
	ckptPath    string
	ckptRecords int

	// Recovery high-water marks, set once by OpenDir (the engine seeds
	// its sequence counters from them before accepting traffic).
	recoveredMaxSeq    uint64
	recoveredMarkerSeq uint64

	// poisonedFlag mirrors flushErr != nil without taking mu, so the
	// engine can refuse Begin on a poisoned log cheaply.
	poisonedFlag atomic.Bool

	// Flusher-private state, guarded by flushing (or by mu once Close
	// has observed flushing == false).
	cur        File
	curIndex   uint64
	curSize    int64
	curLastSeq uint64
	filled     []segMeta // segments rotated away during the current batch
	batchBytes int64
	batchSyncs int64
}

// Stats is a snapshot of the log's counters. Appends/Fsyncs is the
// group-commit amortization ratio.
type Stats struct {
	Appends      int64
	Flushes      int64
	Fsyncs       int64
	Segments     int
	BytesWritten int64
	// Poisoned reports a sticky flush failure: no further append can
	// succeed until the directory is reopened.
	Poisoned bool
	// Checkpoints and SegmentsGCed count completed checkpoints and the
	// segments they removed; CheckpointSeq and GCFloorSeq are the
	// newest checkpoint's sequence and the current GC floor.
	Checkpoints   int64
	SegmentsGCed  int64
	CheckpointSeq uint64
	GCFloorSeq    uint64
}

// OpenDir opens (creating if necessary) the WAL in dir and recovers it:
// segments are scanned in order and the log is truncated at the first
// torn, corrupt, or otherwise undecodable record — that record and
// everything after it (including any later segments) is discarded.
// Records surviving recovery can then be read with Replay before new
// appends begin.
func OpenDir(dir string, cfg Config) (*DurableLog, error) {
	if cfg.FS == nil {
		cfg.FS = osFS{}
	}
	if cfg.SegmentSize <= segmentHeaderSize {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.GroupWindow <= 0 {
		cfg.GroupWindow = DefaultGroupWindow
	}
	l := &DurableLog{dir: dir, cfg: cfg, fs: cfg.FS}
	l.cond = sync.NewCond(&l.mu)

	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	names, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type cand struct {
		index uint64
		name  string
	}
	var cands []cand
	var ckpts []cand // checkpoint files, keyed by their seq
	for _, n := range names {
		if idx, ok := parseSegName(n); ok {
			cands = append(cands, cand{idx, n})
		} else if seq, ok := parseCkptName(n); ok {
			ckpts = append(ckpts, cand{seq, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].index < cands[j].index })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].index < ckpts[j].index })

	// Choose the newest COMPLETE checkpoint (torn ones are discarded
	// like torn records, older ones are superseded); the manifest, when
	// intact, just confirms the choice — the checkpoint file's own
	// footer is the source of truth, because the manifest is only
	// written after the file is durable and may itself be torn by a
	// crash mid-GC.
	for i := len(ckpts) - 1; i >= 0; i-- {
		c := ckpts[i]
		path := filepath.Join(dir, c.name)
		if l.ckptPath == "" {
			if n, complete := scanCheckpoint(l.fs, path, c.index); complete {
				l.ckptSeq, l.ckptPath, l.ckptRecords = c.index, path, n
				continue
			}
		}
		if err := l.fs.Remove(path); err != nil {
			return nil, fmt.Errorf("wal: removing stale checkpoint %s: %w", c.name, err)
		}
	}
	// The GC floor after a restart is the checkpoint sequence itself:
	// precise per-segment floors do not survive the process, and any
	// resume at or below the checkpoint can be answered from the
	// checkpoint anyway. (The manifest's floor field records what GC
	// actually removed, for diagnostics; correctness never trusts a
	// floor LOWER than what might be missing.)
	if l.ckptPath != "" {
		l.floorSeq = l.ckptSeq
		l.recoveredMaxSeq = l.ckptSeq
		// The checkpoint sits on a safe-snapshot marker by construction.
		l.recoveredMarkerSeq = l.ckptSeq
	}

	damaged := false
	for i, c := range cands {
		path := filepath.Join(dir, c.name)
		// Once damage is found — or a segment index gap makes later
		// segments unreachable — everything after the damage point is
		// discarded.
		if damaged || (i > 0 && c.index != cands[i-1].index+1) {
			damaged = true
			if err := l.fs.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: removing unreachable segment %s: %w", c.name, err)
			}
			continue
		}
		good, lastSeq, segDamaged, err := l.scanSegment(path, c.index)
		if err != nil {
			return nil, err
		}
		if segDamaged {
			damaged = true
			if good <= segmentHeaderSize {
				// Not even a valid header survived: nothing usable here.
				if err := l.fs.Remove(path); err != nil {
					return nil, fmt.Errorf("wal: removing damaged segment %s: %w", c.name, err)
				}
				continue
			}
			if err := l.fs.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("wal: truncating damaged segment %s: %w", c.name, err)
			}
		}
		l.segs = append(l.segs, segMeta{index: c.index, path: path, size: good, lastSeq: lastSeq})
	}

	if len(l.segs) == 0 {
		// Continue the index sequence past every segment file seen on
		// disk (even damaged ones recovery removed): reusing an index
		// could collide with a removed segment whose directory entry
		// resurfaces after a power loss.
		idx := uint64(1)
		if len(cands) > 0 {
			idx = cands[len(cands)-1].index + 1
		}
		f, err := l.createSegment(idx)
		if err != nil {
			return nil, err
		}
		l.cur, l.curIndex, l.curSize, l.curLastSeq = f, idx, segmentHeaderSize, l.recoveredMaxSeq
		l.segs = append(l.segs, segMeta{index: idx, path: l.segPath(idx), size: segmentHeaderSize, lastSeq: l.recoveredMaxSeq})
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := l.fs.OpenAppend(last.path)
		if err != nil {
			return nil, err
		}
		l.cur, l.curIndex, l.curSize, l.curLastSeq = f, last.index, last.size, last.lastSeq
	}
	// Make the directory's metadata durable before accepting traffic:
	// recovery may have removed or truncated segments, and a fresh open
	// created one — none of those entries survive a power loss until
	// the directory itself is fsynced.
	if err := l.fs.SyncDir(dir); err != nil {
		l.cur.Close()
		return nil, err
	}
	l.stats.Fsyncs++
	return l, nil
}

// RecoveredRecords reports how many records survived recovery at OpenDir.
func (l *DurableLog) RecoveredRecords() int { return l.recovered }

// Dir returns the directory the log lives in.
func (l *DurableLog) Dir() string { return l.dir }

func (l *DurableLog) segPath(index uint64) string {
	return filepath.Join(l.dir, segName(index))
}

func segName(index uint64) string { return fmt.Sprintf("%016d.wal", index) }

func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 16 {
		return 0, false
	}
	idx, err := strconv.ParseUint(base, 10, 64)
	if err != nil || idx == 0 {
		return 0, false
	}
	return idx, true
}

func encodeSegHeader(index uint64) []byte {
	hdr := make([]byte, segmentHeaderSize)
	copy(hdr, walMagic)
	hdr[8] = FormatVersion
	binary.BigEndian.PutUint64(hdr[9:17], index)
	return hdr
}

// readSegHeader validates a segment header against the index encoded in
// the file's name.
func readSegHeader(r io.Reader, wantIndex uint64) error {
	var hdr [segmentHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: segment header: %v", ErrTruncated, err)
	}
	if string(hdr[:8]) != walMagic {
		return fmt.Errorf("%w: bad segment magic", ErrBadRecord)
	}
	if hdr[8] != FormatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[8])
	}
	if idx := binary.BigEndian.Uint64(hdr[9:17]); idx != wantIndex {
		return fmt.Errorf("%w: segment header index %d, file name says %d", ErrBadRecord, idx, wantIndex)
	}
	return nil
}

// scanSegment validates one segment during recovery. It returns the
// offset up to which the segment is intact (segmentHeaderSize or less
// means nothing usable), the highest record sequence seen before the
// damage point, and whether any damage was found. Only failing to open
// the file is a hard error: all content problems are damage, by design —
// recovery must never panic or fail on a torn tail. As a side effect it
// accumulates the recovered-record count (records past the checkpoint,
// the ones Replay will deliver) and the recovery high-water marks.
func (l *DurableLog) scanSegment(path string, index uint64) (good int64, lastSeq uint64, damaged bool, err error) {
	f, err := l.fs.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	if err := readSegHeader(f, index); err != nil {
		return 0, 0, true, nil
	}
	good = segmentHeaderSize
	var buf []byte
	for {
		body, err := readFrame(f, buf)
		if err == io.EOF {
			return good, lastSeq, false, nil
		}
		if err != nil {
			return good, lastSeq, true, nil
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return good, lastSeq, true, nil
		}
		good += int64(frameHeaderSize + len(body))
		buf = body
		if s := uint64(rec.Seq); s > lastSeq {
			lastSeq = s
		}
		if s := uint64(rec.Seq); s > l.recoveredMaxSeq {
			l.recoveredMaxSeq = s
		}
		if rec.SafeSnapshot && uint64(rec.Seq) > l.recoveredMarkerSeq {
			l.recoveredMarkerSeq = uint64(rec.Seq)
		}
		if deliverFrom(rec, mvcc.SeqNo(l.ckptSeq)) {
			l.recovered++
		}
	}
}

// readSegmentRecords streams the records of one recovered/published
// segment region ([0, limit) bytes of the file) through fn. Unlike
// scanSegment this treats damage as an error: callers only read regions
// recovery or a completed flush has validated.
func readSegmentRecords(fs FS, path string, index uint64, limit int64, fn func(Record) error) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := readSegHeader(f, index); err != nil {
		return err
	}
	lr := io.LimitReader(f, limit-segmentHeaderSize)
	var buf []byte
	for {
		body, err := readFrame(lr, buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		buf = body
	}
}

// Replay streams every record that survived recovery AND postdates the
// recovered checkpoint through fn, in log order: commits strictly after
// the checkpoint sequence, markers and schema records at or after it
// (the same boundary rule as SubscribeFrom — the caller loads the
// checkpoint itself via ReplayCheckpoint first). It must be called
// after OpenDir and before any appends.
func (l *DurableLog) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segMeta(nil), l.segs...)
	after := mvcc.SeqNo(l.ckptSeq)
	l.mu.Unlock()
	for _, s := range segs {
		if s.size <= segmentHeaderSize {
			continue
		}
		err := readSegmentRecords(l.fs, s.path, s.index, s.size, func(rec Record) error {
			if !deliverFrom(rec, after) {
				return nil
			}
			return fn(rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RecoveredMaxSeq is the highest record sequence recovery saw (the
// checkpoint sequence counts); the engine seeds its commit-sequence
// counter from it so post-recovery sequences never collide with
// on-disk ones.
func (l *DurableLog) RecoveredMaxSeq() uint64 { return l.recoveredMaxSeq }

// RecoveredMarkerSeq is the highest safe-snapshot marker sequence
// recovery saw (the checkpoint sequence counts: a checkpoint sits on a
// marker); the engine seeds its marker high-water mark from it so
// marker sequences in the stream never regress across a restart.
func (l *DurableLog) RecoveredMarkerSeq() uint64 { return l.recoveredMarkerSeq }

// PrepareRecord encodes rec into a Pending, ready for Enqueue. Safe to
// call with rec.Seq unset: Enqueue stamps the final sequence number.
//
// A record whose frame would exceed MaxRecordSize is rejected here
// (Pending.Err reports ErrRecordTooLarge) and will never be written:
// readFrame refuses such frames, so writing one would make an
// acknowledged commit — and everything after it — look like damage on
// recovery.
func (l *DurableLog) PrepareRecord(rec Record) *Pending {
	if err := ValidateRecord(rec); err != nil {
		return &Pending{rec: rec, err: err}
	}
	return &Pending{frame: encodeFrame(rec), rec: rec}
}

// Enqueue stamps seq into the prepared record and reserves its position
// in the log: the record joins the flush queue and is fanned out to
// subscribers. It is designed to be called inside the MVCC commit
// publication critical section — it only patches eight bytes, takes the
// log mutex, and appends to a slice; all encoding happened in
// PrepareRecord and all I/O happens on the flusher goroutine. Call
// p.Wait afterwards (outside the critical section) for durability.
func (l *DurableLog) Enqueue(p *Pending, seq mvcc.SeqNo) {
	if p.err != nil {
		// Rejected at PrepareRecord (oversize): the record must never
		// reach the log — recovery could not read it back. The caller
		// should have failed the commit on Pending.Err already; this is
		// the backstop that keeps the log recoverable regardless.
		p.ticket = failedTicket(p.err)
		return
	}
	patchSeq(p.frame, uint64(seq))
	p.rec.Seq = seq
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		p.ticket = failedTicket(ErrClosed)
		return
	}
	if l.flushErr != nil {
		p.ticket = failedTicket(l.flushErr)
		return
	}
	if l.cfg.Fsync != FsyncOff {
		p.ticket = &Ticket{done: make(chan struct{})}
	}
	l.pending = append(l.pending, queued{frame: p.frame, rec: p.rec, ticket: p.ticket})
	l.stats.Appends++
	l.fanoutLocked(p.rec)
	l.kickFlushLocked()
}

// Append encodes and enqueues a record whose sequence number is already
// known (markers, schema records). The returned ticket resolves when the
// record is durable; nil in FsyncOff mode.
func (l *DurableLog) Append(rec Record) *Ticket {
	p := l.PrepareRecord(rec)
	l.Enqueue(p, rec.Seq)
	return p.ticket
}

// fanoutLocked mirrors Log.fanoutLocked: non-blocking sends with
// overflow-disconnect, so the committer holding the publication critical
// section is never stalled by a subscriber.
func (l *DurableLog) fanoutLocked(r Record) {
	live := l.subs[:0]
	for _, ch := range l.subs {
		select {
		case ch <- r:
			live = append(live, ch)
		default:
			close(ch)
		}
	}
	for i := len(live); i < len(l.subs); i++ {
		l.subs[i] = nil
	}
	l.subs = live
}

func (l *DurableLog) kickFlushLocked() {
	if l.flushing || len(l.pending) == 0 {
		return
	}
	l.flushing = true
	go l.flushLoop()
}

// flushLoop is the single group-commit flusher: it repeatedly grabs the
// whole pending queue as one batch, writes and fsyncs it, and resolves
// the batch's tickets. Committers that enqueue while a batch is being
// synced pile up for the next batch — that pile-up is the group commit.
// The loop exits when the queue is empty; the next Enqueue restarts it.
func (l *DurableLog) flushLoop() {
	for {
		if l.cfg.Fsync == FsyncBatch {
			// Gather window: let concurrent committers join this batch.
			time.Sleep(l.cfg.GroupWindow)
		}
		l.mu.Lock()
		if len(l.pending) == 0 {
			l.flushing = false
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		}
		batch := l.pending
		l.pending = nil
		l.inflight = batch
		err := l.flushErr
		l.mu.Unlock()

		wrote := false
		if err == nil {
			wrote = true
			err = l.writeBatch(batch)
		}

		// Publish the batch's on-disk region and retire it from
		// inflight in ONE critical section: a Subscribe snapshot must
		// never see a record both in a published segment region and in
		// inflight (it would deliver the record twice).
		l.mu.Lock()
		if wrote {
			if err == nil {
				l.publishSizesLocked()
			}
			l.stats.BytesWritten += l.batchBytes
			l.stats.Fsyncs += l.batchSyncs
		}
		l.inflight = nil
		if err != nil && l.flushErr == nil {
			l.flushErr = err
			l.poisonedFlag.Store(true)
		}
		l.stats.Flushes++
		l.mu.Unlock()

		for _, q := range batch {
			if q.ticket != nil {
				q.ticket.err = err
				close(q.ticket.done)
			}
		}
	}
}

// writeBatch writes one batch of frames to the current segment, rotating
// as needed, and fsyncs per the mode. Runs on the flusher goroutine with
// exclusive access to cur/curIndex/curSize. It does NOT publish the new
// segment sizes: flushLoop publishes them (publishSizesLocked) in the
// same l.mu critical section that clears l.inflight, so Subscribe's
// disk-plus-inflight-plus-pending snapshot never double-counts a record.
func (l *DurableLog) writeBatch(batch []queued) error {
	l.filled = l.filled[:0]
	l.batchBytes, l.batchSyncs = 0, 0
	for _, q := range batch {
		if q.barrier {
			// Barriers write nothing; their ticket resolves with the
			// batch's fsync like any other entry.
			continue
		}
		if l.curSize+int64(len(q.frame)) > l.cfg.SegmentSize && l.curSize > segmentHeaderSize {
			if err := l.rotate(); err != nil {
				return err
			}
		}
		n, err := l.cur.Write(q.frame)
		l.curSize += int64(n)
		l.batchBytes += int64(n)
		if err != nil {
			return err
		}
		if s := uint64(q.rec.Seq); s > l.curLastSeq {
			l.curLastSeq = s
		}
	}
	if l.cfg.Fsync != FsyncOff {
		if err := l.cur.Sync(); err != nil {
			return err
		}
		l.batchSyncs++
	}
	return nil
}

// publishSizesLocked exposes the regions writeBatch just wrote (filled
// segments' final sizes plus the current segment's new size) to readers.
// Caller holds l.mu and must clear l.inflight in the same critical
// section. Segments GC'd while the batch was in flight are simply no
// longer in l.segs — a GC'd segment's records were all at or below a
// checkpoint, so they predate this batch and there is nothing to
// publish for them.
func (l *DurableLog) publishSizesLocked() {
	for _, fm := range l.filled {
		for j := len(l.segs) - 1; j >= 0; j-- {
			if l.segs[j].index == fm.index {
				l.segs[j].size = fm.size
				l.segs[j].lastSeq = fm.lastSeq
				break
			}
		}
	}
	for j := len(l.segs) - 1; j >= 0; j-- {
		if l.segs[j].index == l.curIndex {
			l.segs[j].size = l.curSize
			l.segs[j].lastSeq = l.curLastSeq
			break
		}
	}
}

// rotate seals the current segment (fsyncing it unless FsyncOff) and
// starts the next one. Frames never span segments.
func (l *DurableLog) rotate() error {
	if l.cfg.Fsync != FsyncOff {
		if err := l.cur.Sync(); err != nil {
			return err
		}
		l.batchSyncs++
	}
	if err := l.cur.Close(); err != nil {
		return err
	}
	sealedIndex, sealedLastSeq := l.curIndex, l.curLastSeq
	l.filled = append(l.filled, segMeta{index: sealedIndex, size: l.curSize, lastSeq: sealedLastSeq})
	idx := l.curIndex + 1
	f, err := l.createSegment(idx)
	if err != nil {
		return err
	}
	l.cur, l.curIndex, l.curSize = f, idx, segmentHeaderSize
	l.batchBytes += segmentHeaderSize
	if l.cfg.Fsync != FsyncOff {
		// Persist the new segment's directory entry before any record
		// in it is acknowledged: fsyncing the file alone does not make
		// it reachable after a power loss — a lost entry would silently
		// drop the whole segment on recovery.
		if err := l.fs.SyncDir(l.dir); err != nil {
			return err
		}
		l.batchSyncs++
	}
	l.mu.Lock()
	// Publish the sealed segment's exact lastSeq now (its size waits
	// for the batch's publish, but checkpoint GC needs sealed lastSeq
	// to be trustworthy the moment the segment stops growing).
	for j := len(l.segs) - 1; j >= 0; j-- {
		if l.segs[j].index == sealedIndex {
			l.segs[j].lastSeq = sealedLastSeq
			break
		}
	}
	l.segs = append(l.segs, segMeta{index: idx, path: l.segPath(idx), size: segmentHeaderSize, lastSeq: sealedLastSeq})
	l.mu.Unlock()
	return nil
}

func (l *DurableLog) createSegment(index uint64) (File, error) {
	f, err := l.fs.Create(l.segPath(index))
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeSegHeader(index)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Subscribe returns a channel that replays every record in the log (from
// disk, plus any not yet flushed) and then streams new ones. Cancel
// detaches and closes the channel; a subscriber that falls more than the
// fan-out buffer behind is disconnected (see Log.Append — same policy).
func (l *DurableLog) Subscribe() (<-chan Record, func()) {
	return l.SubscribeFrom(0)
}

// SubscribeFrom is Subscribe resuming from a commit-sequence position:
// only records passing the Stream.SubscribeFrom filter are delivered,
// both from the disk/in-memory backlog and from the live stream. A
// position below the GC floor cannot be resumed — the records are
// gone; the channel is returned already closed (loud, never a silent
// gap). Use SubscribeFromChecked to distinguish that from a closed log.
func (l *DurableLog) SubscribeFrom(after mvcc.SeqNo) (<-chan Record, func()) {
	ch, cancel, err := l.SubscribeFromChecked(after)
	if err != nil {
		closed := make(chan Record)
		close(closed)
		return closed, func() {}
	}
	return ch, cancel
}

// SubscribeFromChecked implements CheckedStream: SubscribeFrom that
// reports ErrSeqTruncated when the resume position falls below the GC
// floor, so the consumer can re-seed from a checkpoint instead of
// mistaking truncation for a transient disconnect.
func (l *DurableLog) SubscribeFromChecked(after mvcc.SeqNo) (<-chan Record, func(), error) {
	ch := make(chan Record, subscriberBuffer)
	l.mu.Lock()
	if uint64(after) < l.floorSeq {
		floor := l.floorSeq
		l.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: resume after seq %d, GC floor %d", ErrSeqTruncated, after, floor)
	}
	segs := append([]segMeta(nil), l.segs...)
	mem := make([]Record, 0, len(l.inflight)+len(l.pending))
	for _, q := range l.inflight {
		if !q.barrier && deliverFrom(q.rec, after) {
			mem = append(mem, q.rec)
		}
	}
	for _, q := range l.pending {
		if !q.barrier && deliverFrom(q.rec, after) {
			mem = append(mem, q.rec)
		}
	}
	if l.closed {
		close(ch)
	} else {
		l.subs = append(l.subs, ch)
	}
	l.mu.Unlock()

	out := make(chan Record, 64)
	done := make(chan struct{})
	go func() {
		var backlog []Record
		for _, s := range segs {
			if s.size <= segmentHeaderSize {
				continue
			}
			err := readSegmentRecords(l.fs, s.path, s.index, s.size, func(r Record) error {
				if deliverFrom(r, after) {
					backlog = append(backlog, r)
				}
				return nil
			})
			if err != nil {
				// A published region failing to read back means the
				// disk is gone or the log poisoned; end the stream.
				close(out)
				return
			}
		}
		backlog = append(backlog, mem...)
		forwardRecords(backlog, ch, out, done, after)
	}()

	cancel := func() {
		l.mu.Lock()
		for i, s := range l.subs {
			if s == ch {
				l.subs = append(l.subs[:i], l.subs[i+1:]...)
				break
			}
		}
		l.mu.Unlock()
		close(done)
	}
	return out, cancel, nil
}

// SyncBarrier blocks until everything enqueued before it is flushed and
// fsynced (per the log's mode; FsyncOff waits for nothing), returning
// the sticky flush error if the log is poisoned. Checkpointing uses it
// to prove the log durable through the checkpoint sequence before any
// segment is GC'd.
func (l *DurableLog) SyncBarrier() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.flushErr; err != nil {
		l.mu.Unlock()
		return err
	}
	if l.cfg.Fsync == FsyncOff {
		l.mu.Unlock()
		return nil
	}
	t := &Ticket{done: make(chan struct{})}
	l.pending = append(l.pending, queued{barrier: true, ticket: t})
	l.kickFlushLocked()
	l.mu.Unlock()
	return t.Wait()
}

// PoisonErr reports the sticky flush error once the log is poisoned
// (nil otherwise). The fast path is one atomic load, so the engine can
// check it on every Begin.
func (l *DurableLog) PoisonErr() error {
	if !l.poisonedFlag.Load() {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushErr
}

// Close drains the flush queue, syncs the current segment (even in
// FsyncOff mode: a clean shutdown is durable), and closes it. Appends
// after Close fail with ErrClosed; subscriber streams end.
func (l *DurableLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for l.flushing {
		l.cond.Wait()
	}
	var err error
	if l.cur != nil {
		if l.flushErr == nil {
			if serr := l.cur.Sync(); serr != nil {
				err = serr
			} else {
				l.stats.Fsyncs++
			}
			// FsyncOff rotations skip the directory fsync; a clean
			// shutdown settles the debt so every segment's entry is
			// durable.
			if err == nil {
				if serr := l.fs.SyncDir(l.dir); serr != nil {
					err = serr
				} else {
					l.stats.Fsyncs++
				}
			}
		}
		if cerr := l.cur.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.cur = nil
	}
	if err == nil {
		err = l.flushErr
	}
	subs := l.subs
	l.subs = nil
	l.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	return err
}

// Stats returns a snapshot of the log's counters.
func (l *DurableLog) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	s.Poisoned = l.flushErr != nil
	s.CheckpointSeq = l.ckptSeq
	s.GCFloorSeq = l.floorSeq
	return s
}
