// Package wal implements the engine's write-ahead log: a logical log of
// committed transactions (plus safe-snapshot markers and schema records)
// with log-shipping subscriptions, modelling PostgreSQL's streaming
// replication (§7.2 of the paper — the stream carries the markers that
// identify safe snapshots, so replicas can run serializable read-only
// transactions without tracking read dependencies).
//
// Two implementations share the Record format and the Stream interface:
//
//   - Log is the original in-memory logical log: nothing survives the
//     process, it exists for replication plumbing and for A/B ablation
//     against the durable path (pgssi Config.DisableDurableWAL).
//   - DurableLog (durable.go) persists records to CRC-framed segment
//     files with group-commit fsync batching and crash recovery; see
//     docs/wal.md for the normative on-disk format.
//
// Records are appended in commit-sequence order: the engine serializes
// each commit's publication with its log append under one mutex (pgssi's
// publishCommit; the durable path additionally reserves its position
// inside the MVCC publication critical section via
// internal/mvcc Config.OnCommitPublish), so a transaction that observed
// another's writes always appears later in the log, and a safe-snapshot
// marker always follows every commit record it covers. Recovery
// replaying a prefix of the log therefore always reconstructs a
// dependency-closed prefix of the committed history, and a subscriber
// resuming from its newest applied commit sequence (SubscribeFrom)
// never misses an earlier commit appended late.
package wal

import (
	"errors"
	"sync"

	"pgssi/internal/mvcc"
)

// Op is one logical change within a committed transaction.
type Op struct {
	Table  string
	Key    string
	Value  []byte
	Delete bool
}

// Record is one WAL entry: a transaction's commit (Ops non-empty), a
// safe-snapshot marker, or a schema record (CreateTable non-empty).
type Record struct {
	// Seq is the commit sequence number on the master; markers and
	// schema records carry the sequence number of the last commit they
	// follow.
	Seq mvcc.SeqNo
	// Xid is the committing transaction's id (diagnostics and recovery
	// tracing; zero for markers and schema records).
	Xid mvcc.TxID
	// Ops are the transaction's writes in apply order.
	Ops []Op
	// SafeSnapshot marks a point in the stream at which no read/write
	// serializable transaction was in flight on the master: a replica
	// snapshot taken exactly here is safe (§4.2, §7.2).
	SafeSnapshot bool
	// CreateTable, when non-empty, records the creation of a table, so
	// recovery and replicas can rebuild the schema before applying row
	// changes.
	CreateTable string
}

// Stream is the subscription surface shared by the in-memory Log, the
// DurableLog, and network sources (internal/wire's replication client):
// Subscribe returns a channel that first replays every existing record
// and then streams new ones, plus a cancel function that detaches the
// subscription and closes the channel. SubscribeFrom resumes a
// subscription from a commit-sequence position instead of the start:
// it delivers commit records with Seq > after and marker/schema records
// with Seq >= after. The asymmetry follows from how positions are
// stamped — commit CSNs are unique, so a commit the subscriber already
// applied is never redelivered, while markers and schema records carry
// the sequence number of the last commit they follow and so may share
// it; a marker at the resume boundary is redelivered rather than
// dropped (losing it could hide a safe point forever; reapplying it is
// idempotent). SubscribeFrom(0) is equivalent to Subscribe.
type Stream interface {
	Subscribe() (<-chan Record, func())
	SubscribeFrom(after mvcc.SeqNo) (<-chan Record, func())
}

// SourceErrorer is optionally implemented by Stream sources whose
// subscriptions can fail permanently (a network source whose primary
// refuses replication outright, say). A closed subscription channel
// normally means "re-subscribe and catch up"; a consumer should first
// check PermanentErr and stop retrying — and surface the error — when
// it reports non-nil. In-process logs never fail permanently and do not
// implement it.
type SourceErrorer interface {
	PermanentErr() error
}

// ErrSeqTruncated reports a SubscribeFrom position that falls below the
// log's GC floor: the records needed to resume from there were
// garbage-collected by a checkpoint. A consumer must re-seed from a
// checkpoint (CheckpointSource) instead of resuming — the gap is real
// and can never be filled by waiting or retrying.
var ErrSeqTruncated = errors.New("wal: position truncated by checkpoint GC")

// ErrNoCheckpoint reports that a CheckpointSource has no checkpoint to
// replay (the log has never checkpointed, or the primary serves none).
var ErrNoCheckpoint = errors.New("wal: no checkpoint")

// CheckedStream is a Stream whose history can be truncated by
// checkpoint GC. SubscribeFromChecked is SubscribeFrom that reports
// ErrSeqTruncated instead of delivering a silent gap when `after` falls
// below the GC floor. Sources that implement it (DurableLog, wire's
// ReplicaSource) let a replica distinguish "resume" from "must re-seed
// from a checkpoint"; plain SubscribeFrom on the same source closes the
// stream immediately in that case (loud, but indistinguishable from a
// transient drop).
type CheckedStream interface {
	Stream
	SubscribeFromChecked(after mvcc.SeqNo) (<-chan Record, func(), error)
}

// CheckpointInfo describes one checkpoint: the safe-snapshot commit
// sequence it captures and how many data records (schema + row images)
// it holds.
type CheckpointInfo struct {
	Seq     mvcc.SeqNo
	Records int
}

// CheckpointSource is a source a consumer can seed a fresh database
// from: ReplayCheckpoint streams the newest checkpoint's records
// (schema records first, then row-image commit records, all stamped
// with the checkpoint sequence) through fn and returns its info, or
// ErrNoCheckpoint. After seeding, resume with SubscribeFrom(info.Seq).
type CheckpointSource interface {
	ReplayCheckpoint(fn func(Record) error) (CheckpointInfo, error)
}

// deliverFrom reports whether rec belongs in a subscription resuming
// after commit-sequence position `after` (see Stream.SubscribeFrom).
func deliverFrom(rec Record, after mvcc.SeqNo) bool {
	if rec.SafeSnapshot || rec.CreateTable != "" {
		return rec.Seq >= after
	}
	return rec.Seq > after
}

// subscriberBuffer is the per-subscriber fan-out buffer. A subscriber
// that falls this many records behind the appender is disconnected (its
// channel is closed) rather than allowed to block appends: an appender
// must never be stalled by a slow or dead subscriber, because in the
// durable path the append happens inside the commit critical section.
const subscriberBuffer = 1024

// Log is an in-memory WAL with replay-from-start subscriptions.
type Log struct {
	mu      sync.Mutex //ssi:lock level=20 name=wal.log
	records []Record
	subs    []chan Record
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{}
}

// Append adds a record and fans it out to subscribers. The send is
// non-blocking: a subscriber whose buffer is full (it stopped draining,
// or died without cancelling) is disconnected — its channel is closed
// and it receives no further records — so an appender is never blocked
// by a subscriber (overflow-disconnect policy; the replica tier treats a
// closed stream as "re-subscribe and catch up").
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, r)
	l.fanoutLocked(r)
}

// fanoutLocked delivers r to every live subscriber, disconnecting any
// whose buffer is full. Caller holds l.mu, which also orders the closes
// against Subscribe/cancel.
func (l *Log) fanoutLocked(r Record) {
	live := l.subs[:0]
	for _, ch := range l.subs {
		select {
		case ch <- r:
			live = append(live, ch)
		default:
			close(ch)
		}
	}
	// Zero the tail so dropped channels aren't retained by the backing
	// array.
	for i := len(live); i < len(l.subs); i++ {
		l.subs[i] = nil
	}
	l.subs = live
}

// Subscribe returns a channel that first replays every existing record
// and then streams new ones. The returned cancel function detaches the
// subscription and closes the channel. The channel is also closed if the
// subscriber falls more than the fan-out buffer behind (see Append).
func (l *Log) Subscribe() (<-chan Record, func()) {
	return l.SubscribeFrom(0)
}

// SubscribeFrom is Subscribe resuming from a commit-sequence position:
// only records passing the Stream.SubscribeFrom filter are delivered,
// both from the backlog and from the live stream.
func (l *Log) SubscribeFrom(after mvcc.SeqNo) (<-chan Record, func()) {
	ch := make(chan Record, subscriberBuffer)
	l.mu.Lock()
	var backlog []Record
	for _, r := range l.records {
		if deliverFrom(r, after) {
			backlog = append(backlog, r)
		}
	}
	l.subs = append(l.subs, ch)
	l.mu.Unlock()

	out := make(chan Record, 64)
	done := make(chan struct{})
	go forwardRecords(backlog, ch, out, done, after)

	cancel := func() {
		l.mu.Lock()
		for i, s := range l.subs {
			if s == ch {
				l.subs = append(l.subs[:i], l.subs[i+1:]...)
				break
			}
		}
		l.mu.Unlock()
		close(done)
	}
	return out, cancel
}

// forwardRecords pumps a backlog and then a live channel into out,
// stopping when done closes or the live channel is closed (producer gone
// or subscriber disconnected for falling behind). Live records that do
// not pass the resume filter (a master behind the subscriber's position)
// are dropped rather than delivered out of order.
func forwardRecords(backlog []Record, live <-chan Record, out chan<- Record, done <-chan struct{}, after mvcc.SeqNo) {
	defer close(out)
	for _, r := range backlog {
		select {
		case out <- r:
		case <-done:
			return
		}
	}
	for {
		select {
		case r, ok := <-live:
			if !ok {
				return
			}
			if !deliverFrom(r, after) {
				continue
			}
			select {
			case out <- r:
			case <-done:
				return
			}
		case <-done:
			return
		}
	}
}

// Len returns the number of records appended so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of all records (for tests).
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}
