// Package wal implements a logical write-ahead log with log-shipping
// subscriptions, modelling PostgreSQL's streaming replication (§7.2 of
// the paper). The master appends one record per committed read/write
// transaction; the stream also carries safe-snapshot markers — the
// mechanism the paper proposes ("adding information to the log stream
// that identifies safe snapshots") so that replicas can run serializable
// read-only transactions without tracking read dependencies.
package wal

import (
	"sync"

	"pgssi/internal/mvcc"
)

// Op is one logical change within a committed transaction.
type Op struct {
	Table  string
	Key    string
	Value  []byte
	Delete bool
}

// Record is one WAL entry: either a transaction's commit (Ops non-empty
// or zero-op commit) or a safe-snapshot marker.
type Record struct {
	// Seq is the commit sequence number on the master; markers carry
	// the sequence number of the last commit they follow.
	Seq mvcc.SeqNo
	// Ops are the transaction's writes in apply order.
	Ops []Op
	// SafeSnapshot marks a point in the stream at which no read/write
	// serializable transaction was in flight on the master: a replica
	// snapshot taken exactly here is safe (§4.2, §7.2).
	SafeSnapshot bool
}

// Log is an in-memory WAL with replay-from-start subscriptions.
type Log struct {
	mu      sync.Mutex
	records []Record
	subs    []chan Record
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{}
}

// Append adds a record and fans it out to subscribers. Subscribers that
// fall behind block the appender — fine for a simulation; a production
// system would buffer to disk.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	l.records = append(l.records, r)
	subs := make([]chan Record, len(l.subs))
	copy(subs, l.subs)
	l.mu.Unlock()
	for _, ch := range subs {
		ch <- r
	}
}

// Subscribe returns a channel that first replays every existing record
// and then streams new ones. The returned cancel function detaches the
// subscription and closes the channel.
func (l *Log) Subscribe() (<-chan Record, func()) {
	ch := make(chan Record, 1024)
	l.mu.Lock()
	backlog := make([]Record, len(l.records))
	copy(backlog, l.records)
	l.subs = append(l.subs, ch)
	l.mu.Unlock()

	out := make(chan Record, 64)
	done := make(chan struct{})
	go func() {
		defer close(out)
		for _, r := range backlog {
			select {
			case out <- r:
			case <-done:
				return
			}
		}
		for {
			select {
			case r, ok := <-ch:
				if !ok {
					return
				}
				select {
				case out <- r:
				case <-done:
					return
				}
			case <-done:
				return
			}
		}
	}()

	cancel := func() {
		l.mu.Lock()
		for i, s := range l.subs {
			if s == ch {
				l.subs = append(l.subs[:i], l.subs[i+1:]...)
				break
			}
		}
		l.mu.Unlock()
		close(done)
	}
	return out, cancel
}

// Len returns the number of records appended so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of all records (for tests).
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}
