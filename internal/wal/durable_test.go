package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pgssi/internal/mvcc"
)

func commitRec(seq uint64, key, val string) Record {
	return Record{
		Seq: mvcc.SeqNo(seq),
		Xid: mvcc.TxID(seq),
		Ops: []Op{{Table: "t", Key: key, Value: []byte(val)}},
	}
}

func mustAppend(t *testing.T, l *DurableLog, rec Record) {
	t.Helper()
	if err := l.Append(rec).Wait(); err != nil {
		t.Fatalf("append seq %d: %v", rec.Seq, err)
	}
}

func replayAll(t *testing.T, l *DurableLog) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Record{Seq: 0, CreateTable: "t"})
	mustAppend(t, l, commitRec(1, "a", "1"))
	mustAppend(t, l, commitRec(2, "b", "2"))
	mustAppend(t, l, Record{Seq: 2, SafeSnapshot: true})
	del := Record{Seq: 3, Xid: 3, Ops: []Op{{Table: "t", Key: "a", Delete: true}}}
	mustAppend(t, l, del)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.RecoveredRecords(); got != 5 {
		t.Fatalf("recovered %d records, want 5", got)
	}
	recs := replayAll(t, l2)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	if recs[0].CreateTable != "t" || recs[1].Seq != 1 || !recs[3].SafeSnapshot {
		t.Fatalf("bad records: %+v", recs)
	}
	if op := recs[4].Ops[0]; !op.Delete || op.Key != "a" || len(op.Value) != 0 {
		t.Fatalf("bad delete op: %+v", op)
	}
	if string(recs[2].Ops[0].Value) != "2" || recs[2].Xid != 2 {
		t.Fatalf("bad commit record: %+v", recs[2])
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
	}
	if s := l.Stats(); s.Segments < 5 {
		t.Fatalf("expected rotation, got %d segments", s.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, Config{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != mvcc.SeqNo(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
	}
	// Appends continue in the recovered tail segment.
	mustAppend(t, l2, commitRec(n+1, "after", "recovery"))
	if recs := replayAll(t, l2); len(recs) != n+1 || recs[n].Ops[0].Key != "after" {
		t.Fatalf("replay after append = %d records (last %+v)", len(recs), recs[len(recs)-1])
	}
}

// corruptLastSegment applies fn to the newest segment file's bytes.
func corruptLastSegment(t *testing.T, dir string, fn func([]byte) []byte) {
	t.Helper()
	names, err := (osFS{}).ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			last = n
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	path := filepath.Join(dir, last)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeLog(t *testing.T, dir string, cfg Config, n int) {
	t.Helper()
	l, err := OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "torn-write-test-value"))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryStopsAtTornRecord(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, Config{Fsync: FsyncAlways}, 5)
	// Tear the last record: drop its final 7 bytes.
	corruptLastSegment(t, dir, func(b []byte) []byte { return b[:len(b)-7] })

	l, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.RecoveredRecords(); got != 4 {
		t.Fatalf("recovered %d records, want 4", got)
	}
	// The log stays appendable at the truncation point.
	mustAppend(t, l, commitRec(6, "post", "damage"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2)
	if len(recs) != 5 || recs[4].Ops[0].Key != "post" {
		t.Fatalf("after repair: %d records (%+v)", len(recs), recs)
	}
}

func TestRecoveryStopsAtBitFlip(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, Config{Fsync: FsyncAlways}, 5)
	// Flip one bit somewhere in the middle of the file body.
	corruptLastSegment(t, dir, func(b []byte) []byte {
		b[len(b)/2] ^= 0x40
		return b
	})
	l, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := l.RecoveredRecords()
	if n >= 5 {
		t.Fatalf("recovered %d records despite corruption", n)
	}
	// Everything that did survive decodes cleanly and in order.
	recs := replayAll(t, l)
	if len(recs) != n {
		t.Fatalf("replay %d != recovered %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != mvcc.SeqNo(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
	}
}

func TestRecoveryDiscardsSegmentsAfterDamage(t *testing.T) {
	dir := t.TempDir()
	// Small segments: 30 records spread over several files.
	writeLog(t, dir, Config{Fsync: FsyncAlways, SegmentSize: 256}, 30)
	names, _ := (osFS{}).ReadDir(dir)
	if len(names) < 3 {
		t.Fatalf("want ≥3 segments, got %v", names)
	}
	// Corrupt the SECOND segment: its tail and every later segment must
	// be discarded.
	path := filepath.Join(dir, names[1])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[segmentHeaderSize+10] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := OpenDir(dir, Config{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := replayAll(t, l)
	for i, r := range recs {
		if r.Seq != mvcc.SeqNo(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
	}
	if len(recs) >= 30 {
		t.Fatal("damage in segment 2 did not drop any records")
	}
	after, _ := (osFS{}).ReadDir(dir)
	if len(after) >= len(names) {
		t.Fatalf("later segments not removed: before %v after %v", names, after)
	}
}

func TestRecoverySegmentGap(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, Config{Fsync: FsyncAlways, SegmentSize: 256}, 30)
	names, _ := (osFS{}).ReadDir(dir)
	if len(names) < 3 {
		t.Fatalf("want ≥3 segments, got %v", names)
	}
	// Remove a middle segment: everything after the gap is unreachable.
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}
	l, err := OpenDir(dir, Config{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := replayAll(t, l)
	for i, r := range recs {
		if r.Seq != mvcc.SeqNo(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
	}
	after, _ := (osFS{}).ReadDir(dir)
	if len(after) > 2 { // segment 1 + possibly a fresh tail
		t.Fatalf("segments after gap not removed: %v", after)
	}
}

func TestCrashLosesOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%d", i), "synced"))
	}
	// The final fsyncs silently disappear: records 4 and 5 are written
	// and acknowledged by the (lying) disk, but live only in the page
	// cache.
	ffs.DropFutureSyncs()
	for i := 4; i <= 5; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%d", i), "unsynced"))
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2)
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want exactly the 3 synced ones", len(recs))
	}
	for i, r := range recs {
		if r.Seq != mvcc.SeqNo(i+1) || string(r.Ops[0].Value) != "synced" {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}

func TestFsyncFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, commitRec(1, "a", "ok"))
	ffs.FailSyncs(errors.New("disk on fire"))
	if err := l.Append(commitRec(2, "b", "boom")).Wait(); err == nil {
		t.Fatal("append acknowledged despite fsync failure")
	}
	// Sticky: later appends fail too, even if the disk "recovers".
	ffs.FailSyncs(nil)
	if err := l.Append(commitRec(3, "c", "late")).Wait(); err == nil {
		t.Fatal("append acknowledged on a poisoned log")
	}
}

func TestFsyncOffNoSyncsUntilClose(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncOff, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if tk := l.Append(commitRec(uint64(i), fmt.Sprintf("k%d", i), "v")); tk != nil {
			t.Fatal("FsyncOff returned a ticket")
		}
	}
	// Close flushes and syncs even in off mode, so a clean shutdown is
	// durable.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if ffs.Syncs() == 0 {
		t.Fatal("Close did not sync in FsyncOff mode")
	}
	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.RecoveredRecords(); got != 10 {
		t.Fatalf("recovered %d records after clean FsyncOff close, want 10", got)
	}
}

func TestGroupCommitAmortizesFsync(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncBatch, GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers, per = 8, 25
	var wg sync.WaitGroup
	var seq mvcc.SeqNo
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				mu.Lock()
				seq++
				s := seq
				mu.Unlock()
				rec := Record{Seq: s, Xid: mvcc.TxID(s), Ops: []Op{{Table: "t", Key: fmt.Sprintf("w%dk%d", w, i), Value: []byte("v")}}}
				if err := l.Append(rec).Wait(); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.Stats()
	if s.Appends != workers*per {
		t.Fatalf("appends = %d, want %d", s.Appends, workers*per)
	}
	if s.Fsyncs == 0 || s.Fsyncs >= s.Appends {
		t.Fatalf("group commit did not amortize: %d appends, %d fsyncs", s.Appends, s.Fsyncs)
	}
	t.Logf("group commit: %d appends / %d fsyncs = %.1f per fsync", s.Appends, s.Fsyncs, float64(s.Appends)/float64(s.Fsyncs))
}

// TestDurableAppenderNeverBlockedByDeadSubscriber pins the
// overflow-disconnect policy on the durable log: a subscriber that
// stops draining is disconnected rather than allowed to stall Enqueue
// (which runs inside the MVCC commit publication critical section).
func TestDurableAppenderNeverBlockedByDeadSubscriber(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch, cancel := l.Subscribe()
	defer cancel()
	_ = ch // dead subscriber: never drained
	done := make(chan struct{})
	go func() {
		for i := 1; i <= 3*subscriberBuffer; i++ {
			l.Append(commitRec(uint64(i), "k", "v"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("appender blocked by a dead subscriber")
	}
}

// TestLogAppenderNeverBlockedByDeadSubscriber pins the same policy on
// the in-memory log (the PR-6-era fan-out blocked committers when a
// subscriber died without cancelling).
func TestLogAppenderNeverBlockedByDeadSubscriber(t *testing.T) {
	l := NewLog()
	ch, cancel := l.Subscribe()
	defer cancel()
	_ = ch // dead subscriber: never drained
	done := make(chan struct{})
	go func() {
		for i := 1; i <= 3*subscriberBuffer; i++ {
			l.Append(Record{Seq: mvcc.SeqNo(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("appender blocked by a dead subscriber")
	}
}

func TestDurableSubscribeBacklogThenLive(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, commitRec(1, "a", "1"))
	mustAppend(t, l, commitRec(2, "b", "2"))
	ch, cancel := l.Subscribe()
	defer cancel()
	got := func() Record {
		select {
		case r := <-ch:
			return r
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for record")
			return Record{}
		}
	}
	if r := got(); r.Seq != 1 {
		t.Fatalf("backlog[0] = %+v", r)
	}
	if r := got(); r.Seq != 2 {
		t.Fatalf("backlog[1] = %+v", r)
	}
	mustAppend(t, l, commitRec(3, "c", "3"))
	if r := got(); r.Seq != 3 || string(r.Ops[0].Value) != "3" {
		t.Fatalf("live = %+v", r)
	}
}

func TestRecordTooLargeRejected(t *testing.T) {
	dir := t.TempDir()
	// A frame advertising a huge length must be rejected before
	// allocation, not trusted.
	seg := encodeSegHeader(1)
	var frame [frameHeaderSize]byte
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0xff
	content := append(seg, frame[:]...)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), content, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.RecoveredRecords(); got != 0 {
		t.Fatalf("recovered %d records from garbage", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(commitRec(1, "a", "v")).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Xid: 7, Ops: []Op{{Table: "t", Key: "k", Value: []byte("v")}, {Table: "u", Key: "x", Delete: true}}},
		{Seq: 2, SafeSnapshot: true},
		{Seq: 3, CreateTable: "orders"},
		{Seq: 4, Xid: 9, Ops: []Op{}},
		{Seq: 5, Xid: 10, Ops: []Op{{Table: "", Key: "", Value: []byte{}}}},
	}
	for i, in := range recs {
		frame := encodeFrame(in)
		body, err := readFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("record %d: readFrame: %v", i, err)
		}
		out, err := decodeRecord(body)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if out.Seq != in.Seq || out.Xid != in.Xid || out.SafeSnapshot != in.SafeSnapshot || out.CreateTable != in.CreateTable || len(out.Ops) != len(in.Ops) {
			t.Fatalf("record %d: round trip %+v -> %+v", i, in, out)
		}
		for j := range in.Ops {
			if out.Ops[j].Table != in.Ops[j].Table || out.Ops[j].Key != in.Ops[j].Key || out.Ops[j].Delete != in.Ops[j].Delete || !bytes.Equal(out.Ops[j].Value, in.Ops[j].Value) {
				t.Fatalf("record %d op %d: %+v -> %+v", i, j, in.Ops[j], out.Ops[j])
			}
		}
	}
}

func TestPatchSeqKeepsFrameValid(t *testing.T) {
	frame := encodeFrame(Record{Xid: 42, Ops: []Op{{Table: "t", Key: "k", Value: []byte("v")}}})
	patchSeq(frame, 777)
	body, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("patched frame unreadable: %v", err)
	}
	rec, err := decodeRecord(body)
	if err != nil {
		t.Fatalf("patched frame undecodable: %v", err)
	}
	if rec.Seq != 777 || rec.Xid != 42 {
		t.Fatalf("patched record: %+v", rec)
	}
}

func TestParseFsyncMode(t *testing.T) {
	for s, want := range map[string]FsyncMode{"always": FsyncAlways, "batch": FsyncBatch, "off": FsyncOff} {
		got, err := ParseFsyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// TestOversizeRecordRejectedBeforeLogging pins the write-side half of
// the MaxRecordSize contract: a record whose frame readFrame would
// refuse must fail the append explicitly — if it were written and
// acknowledged, recovery would see it as damage and silently truncate
// the log there, discarding the acknowledged commit and everything
// after it.
func TestOversizeRecordRejectedBeforeLogging(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	big := Record{Seq: 1, Xid: 1, Ops: []Op{{Table: "t", Key: "k", Value: make([]byte, MaxRecordSize)}}}
	if err := ValidateRecord(big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("ValidateRecord = %v, want ErrRecordTooLarge", err)
	}
	p := l.PrepareRecord(big)
	if !errors.Is(p.Err(), ErrRecordTooLarge) {
		t.Fatalf("PrepareRecord.Err = %v, want ErrRecordTooLarge", p.Err())
	}
	// Even if a caller ignores Err, Enqueue is the backstop: the record
	// must never join the flush queue.
	l.Enqueue(p, 1)
	if err := p.Wait(); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("Wait after oversize Enqueue = %v, want ErrRecordTooLarge", err)
	}
	if err := l.Append(big).Wait(); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversize Append = %v, want ErrRecordTooLarge", err)
	}
	// The rejection is per-record, not a log failure: the log is not
	// poisoned and later appends succeed.
	mustAppend(t, l, commitRec(2, "a", "ok"))
	if s := l.Stats(); s.Appends != 1 {
		t.Fatalf("oversize record counted as append: %+v", s)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2)
	if len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("recovered %d records (want just seq 2): %+v", len(recs), recs)
	}
}

// TestSubscribeExactlyOnce races Subscribe against the group-commit
// flusher: a subscription's backlog snapshot (published segment regions
// + inflight batch + pending queue) plus its live stream must deliver
// every record exactly once, whatever instant the snapshot is taken —
// in particular not twice for a batch caught between its disk write and
// its retirement from inflight.
func TestSubscribeExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, Config{Fsync: FsyncBatch, GroupWindow: 200 * time.Microsecond, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 300
	go func() {
		for i := 1; i <= n; i++ {
			l.Append(commitRec(uint64(i), fmt.Sprintf("k%d", i), "v"))
		}
	}()
	for it := 0; it < 40; it++ {
		ch, cancel := l.Subscribe()
		seen := make(map[mvcc.SeqNo]bool, n)
		for r := range ch {
			if seen[r.Seq] {
				cancel()
				t.Fatalf("subscription %d: record seq %d delivered twice", it, r.Seq)
			}
			seen[r.Seq] = true
			if len(seen) == n {
				break
			}
		}
		cancel()
		if len(seen) != n {
			t.Fatalf("subscription %d: stream ended after %d/%d records", it, len(seen), n)
		}
	}
}

// TestRotatedSegmentsSurviveCrash pins the directory fsync in rotate: a
// freshly created segment's directory entry must be durable before any
// record in it is acknowledged. Without it, fsyncing the segment's data
// is not enough — a power loss can lose the entry, and every
// acknowledged commit in that segment silently vanishes on recovery.
func TestRotatedSegmentsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 1; i <= n; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%03d", i), "value-payload"))
	}
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", s.Segments)
	}
	// Machine dies with no clean Close.
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2)
	if len(recs) != n {
		t.Fatalf("recovered %d of %d acknowledged records after crash with rotation", len(recs), n)
	}
}

// TestUnsyncedDirEntryLostAtCrash drives the complementary fault: when
// the directory fsync after a rotation is dropped (lying disk), the new
// segment's entry is lost at the crash and recovery must come up
// cleanly with exactly the records synced before the drop point.
func TestUnsyncedDirEntryLostAtCrash(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	l, err := OpenDir(dir, Config{Fsync: FsyncAlways, SegmentSize: 200, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%d", i), "synced"))
	}
	ffs.DropFutureSyncs()
	// These appends rotate into new segments whose directory entries
	// (and data syncs) are all dropped.
	for i := 4; i <= 12; i++ {
		mustAppend(t, l, commitRec(uint64(i), fmt.Sprintf("k%d", i), "unsynced"))
	}
	if s := l.Stats(); s.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", s.Segments)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	names, err := osFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("crash kept %d segment files %v, want only the first (later entries were never dir-synced)", len(names), names)
	}
	l2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2)
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want exactly the 3 synced ones", len(recs))
	}
	for i, r := range recs {
		if r.Seq != mvcc.SeqNo(i+1) || string(r.Ops[0].Value) != "synced" {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
}
