// Filesystem abstraction for the durable WAL, so the fault-injection
// tests can interpose on writes and fsyncs without touching the segment
// logic. Production always uses the OS filesystem (Config.FS == nil).
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the subset of *os.File the segment writer and readers need.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS is the filesystem surface the durable WAL runs on. All paths are
// absolute (the DurableLog joins its directory itself).
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Create opens name for writing, creating or truncating it.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending.
	OpenAppend(name string) (File, error)
	Truncate(name string, size int64) error
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making its entries (files
	// created or removed in it) durable. Creating and fsyncing a file
	// does not persist its directory entry; until SyncDir, a power loss
	// can make the file unreachable even though its data survived.
	SyncDir(dir string) error
}

// osFS is the production FS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (osFS) Remove(name string) error               { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// FaultFS is a test-only FS over the real filesystem that models the
// failure a write-ahead log exists to survive: data that was written but
// not fsynced is lost at a crash. It tracks, per file it opened for
// writing, how many bytes the last successful fsync covered; Crash()
// truncates every such file to its synced length — exactly what the
// kernel page cache loses when the machine dies — so a test can run a
// workload, "crash", reopen the directory, and assert the recovery
// contract. Directory entries are modelled too: a file created but
// whose directory was not successfully SyncDir'd since is REMOVED at
// Crash() — a power loss can lose the entry of a freshly created file
// even when its data was fsynced, leaving the data unreachable. Fsyncs
// themselves (file and directory alike) can be made to silently
// disappear (DropFutureSyncs / DropSyncsAfter, modelling a dropped
// final fsync) or to fail (FailSyncs).
//
// FaultFS must only be used from tests. It assumes append-only writes
// (which is all the WAL does).
type FaultFS struct {
	mu sync.Mutex //ssi:lock level=30 name=wal.faultfs
	// written and synced are byte lengths per absolute path.
	written map[string]int64
	synced  map[string]int64
	// newEntries tracks, per directory, files created since the last
	// successful SyncDir: their directory entries are volatile and lost
	// at Crash.
	newEntries map[string]map[string]bool
	// removed tracks, per directory, files removed since the last
	// successful SyncDir, with their durable content (what the platter
	// held: the fsynced prefix). An unlink is a directory mutation like
	// a create: until the directory is fsynced, a power loss can leave
	// the old entry — and the file's durable data — in place, so Crash
	// restores these. Checkpoint GC's safety depends on this model:
	// either the removal's covering SyncDir succeeded (and so did the
	// checkpoint's, ordered before it), or the segments come back.
	removed map[string]map[string][]byte
	// allowSyncs is how many more fsyncs succeed before they are
	// silently dropped; -1 means unlimited.
	allowSyncs int64
	syncErr    error
	syncs      int64
}

// NewFaultFS returns a FaultFS with fsyncs working normally.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		written:    make(map[string]int64),
		synced:     make(map[string]int64),
		newEntries: make(map[string]map[string]bool),
		removed:    make(map[string]map[string][]byte),
		allowSyncs: -1,
	}
}

// DropFutureSyncs makes every subsequent fsync a silent no-op: writes
// keep landing in the "page cache" (the real file) but are lost at
// Crash().
func (f *FaultFS) DropFutureSyncs() { f.DropSyncsAfter(0) }

// DropSyncsAfter lets the next n fsyncs succeed and silently drops every
// one after that.
func (f *FaultFS) DropSyncsAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.allowSyncs = int64(n)
}

// FailSyncs makes every subsequent fsync return err (nil restores normal
// operation).
func (f *FaultFS) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// Syncs returns how many fsyncs were attempted (including dropped ones).
func (f *FaultFS) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Crash simulates a machine crash: files whose directory entry was
// never made durable (created with no successful SyncDir since) are
// removed outright — their data is unreachable, however much of it was
// fsynced — and every other file this FS opened for writing is
// truncated to the length its last successful fsync covered, discarding
// the unsynced tail the page cache would lose. The caller must have
// stopped all writers first (the "process" is dead).
func (f *FaultFS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for dir, ents := range f.newEntries {
		for name := range ents {
			if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: crash unlink %s: %w", filepath.Base(name), err)
			}
			delete(f.written, name)
			delete(f.synced, name)
		}
		delete(f.newEntries, dir)
	}
	// Volatile unlinks come back: the directory holding them was never
	// fsynced after the removal, so the old entry — and the file's
	// durable content — survives the power loss.
	for dir, ents := range f.removed {
		for name, content := range ents {
			if err := os.WriteFile(name, content, 0o644); err != nil {
				return fmt.Errorf("wal: crash restore %s: %w", filepath.Base(name), err)
			}
		}
		delete(f.removed, dir)
	}
	for name, written := range f.written {
		synced := f.synced[name]
		if synced < written {
			if err := os.Truncate(name, synced); err != nil {
				return fmt.Errorf("wal: crash truncate %s: %w", filepath.Base(name), err)
			}
		}
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error            { return osFS{}.MkdirAll(dir) }
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return osFS{}.ReadDir(dir) }
func (f *FaultFS) Open(name string) (File, error)       { return osFS{}.Open(name) }

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := (osFS{}).Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.written[name]; ok && w > size {
		f.written[name] = size
	}
	if s, ok := f.synced[name]; ok && s > size {
		f.synced[name] = size
	}
	return nil
}

func (f *FaultFS) Remove(name string) error {
	dir := filepath.Dir(name)
	// Capture the file's durable content before unlinking: if the
	// file's own directory entry was durable, the unlink is volatile
	// until the next successful SyncDir, and Crash restores it. A file
	// whose entry was never made durable (still in newEntries) would
	// not have survived a crash anyway, so nothing is captured for it.
	f.mu.Lock()
	entryDurable := f.newEntries[dir] == nil || !f.newEntries[dir][name]
	durableLen, tracked := f.synced[name]
	f.mu.Unlock()
	var content []byte
	if entryDurable {
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		if tracked && durableLen < int64(len(b)) {
			b = b[:durableLen]
		}
		content = b
	}
	if err := (osFS{}).Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.written, name)
	delete(f.synced, name)
	if ents := f.newEntries[dir]; ents != nil {
		delete(ents, name)
	}
	if entryDurable {
		if f.removed[dir] == nil {
			f.removed[dir] = make(map[string][]byte)
		}
		f.removed[dir][name] = content
	}
	return nil
}

// SyncDir makes the directory's entries durable, subject to the same
// drop/fail knobs as file fsyncs: a dropped SyncDir leaves every entry
// created since the last successful one volatile (lost at Crash).
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	f.syncs++
	if f.syncErr != nil {
		err := f.syncErr
		f.mu.Unlock()
		return err
	}
	if f.allowSyncs == 0 {
		f.mu.Unlock()
		return nil
	}
	if f.allowSyncs > 0 {
		f.allowSyncs--
	}
	f.mu.Unlock()
	if err := (osFS{}).SyncDir(dir); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.newEntries, dir)
	delete(f.removed, dir)
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Create(name string) (File, error) {
	file, err := osFS{}.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.written[name] = 0
	f.synced[name] = 0
	dir := filepath.Dir(name)
	if f.newEntries[dir] == nil {
		f.newEntries[dir] = make(map[string]bool)
	}
	f.newEntries[dir][name] = true
	f.mu.Unlock()
	return &faultFile{fs: f, name: name, f: file}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	file, err := osFS{}.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(name)
	if err != nil {
		file.Close()
		return nil, err
	}
	f.mu.Lock()
	// Pre-existing contents (a recovered segment) are considered
	// durable: recovery already truncated to what survived.
	f.written[name] = info.Size()
	f.synced[name] = info.Size()
	f.mu.Unlock()
	return &faultFile{fs: f, name: name, f: file}, nil
}

// faultFile tracks written/synced lengths through its FaultFS.
type faultFile struct {
	fs   *FaultFS
	name string
	f    File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }
func (ff *faultFile) Close() error               { return ff.f.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	n, err := ff.f.Write(p)
	if n > 0 {
		ff.fs.mu.Lock()
		ff.fs.written[ff.name] += int64(n)
		ff.fs.mu.Unlock()
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	ff.fs.syncs++
	if ff.fs.syncErr != nil {
		err := ff.fs.syncErr
		ff.fs.mu.Unlock()
		return err
	}
	if ff.fs.allowSyncs == 0 {
		// Dropped: the data stays in the "page cache" only.
		ff.fs.mu.Unlock()
		return nil
	}
	if ff.fs.allowSyncs > 0 {
		ff.fs.allowSyncs--
	}
	written := ff.fs.written[ff.name]
	ff.fs.mu.Unlock()
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	if written > ff.fs.synced[ff.name] {
		ff.fs.synced[ff.name] = written
	}
	ff.fs.mu.Unlock()
	return nil
}
