package mvcc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests in this file cover the CSN snapshot scheme's edges: the
// commit-publication window (fenced and ablated), Status below the
// truncation floor, own-xid visibility, CSN monotonicity under
// concurrency, done-channel wakeup ordering, AutoTruncate's horizon, and
// the legacy path's shared-mode snapshot lock.

// bothModes runs f against a CSN-mode and a legacy-mode manager; the
// snapshot semantics the engine relies on must hold identically.
func bothModes(t *testing.T, f func(t *testing.T, m *Manager)) {
	t.Helper()
	t.Run("csn", func(t *testing.T) { f(t, New(Config{})) })
	t.Run("legacy", func(t *testing.T) { f(t, New(Config{DisableCSNSnapshots: true})) })
}

func TestOwnXIDNeverVisible(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Manager) {
		self := m.Begin()
		snap := m.TakeSnapshot()
		if snap.Sees(self) {
			t.Fatal("snapshot must not see the caller's own in-progress xid")
		}
		if m.Visible(self, snap) {
			t.Fatal("Visible must be false for the caller's own xid")
		}
		if !snap.ConcurrentWith(self) {
			t.Fatal("own in-progress xid is concurrent with the snapshot")
		}
	})
}

// TestStatusBelowFloorAfterTruncation pins the truncated-region
// contract: absent committed entries resolve committed with an unknown
// seq, aborted entries below the floor survive as tombstones and still
// resolve aborted, and DropAbortedBelow removes the tombstones once the
// caller vouches the heap holds no reference.
func TestStatusBelowFloorAfterTruncation(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Manager) {
		var committed, aborted []TxID
		for i := 0; i < 6; i++ {
			x := m.Begin()
			if i%2 == 0 {
				m.Commit(x)
				committed = append(committed, x)
			} else {
				m.Abort(x)
				aborted = append(aborted, x)
			}
		}
		floor := m.NextXID()
		m.TruncateLog(floor)
		for _, x := range committed {
			if st, seq := m.Status(x); st != StatusCommitted || seq != InvalidSeqNo {
				t.Fatalf("truncated committed xid %d: status %v seq %d, want committed/invalid", x, st, seq)
			}
			if !m.IsCommitted(x) {
				t.Fatalf("truncated committed xid %d must stay committed", x)
			}
		}
		for _, x := range aborted {
			if st, _ := m.Status(x); st != StatusAborted {
				t.Fatalf("aborted tombstone %d below floor: status %v, want aborted", x, st)
			}
		}
		if got, want := m.LogSize(), len(aborted); got != want {
			t.Fatalf("log size after truncation = %d, want %d tombstones", got, want)
		}
		// A current snapshot sees truncated committed xids, never the
		// aborted tombstones.
		snap := m.TakeSnapshot()
		for _, x := range committed {
			if !m.Visible(x, snap) {
				t.Fatalf("truncated committed xid %d invisible to a fresh snapshot", x)
			}
		}
		for _, x := range aborted {
			if m.Visible(x, snap) {
				t.Fatalf("aborted tombstone %d visible", x)
			}
		}
		if n := m.DropAbortedBelow(floor); n != len(aborted) {
			t.Fatalf("DropAbortedBelow removed %d, want %d", n, len(aborted))
		}
		if m.LogSize() != 0 {
			t.Fatalf("log size after tombstone drop = %d, want 0", m.LogSize())
		}
	})
}

// TestTruncateLogIdempotentAndMonotone: lowering the floor is a no-op.
func TestTruncateLogFloorMonotone(t *testing.T) {
	m := NewManager()
	for i := 0; i < 4; i++ {
		m.Commit(m.Begin())
	}
	m.TruncateLog(4)
	before := m.LogSize()
	m.TruncateLog(2) // no-op: below current floor
	if m.LogSize() != before {
		t.Fatal("lowering the truncation floor must be a no-op")
	}
	if st, _ := m.Status(1); st != StatusCommitted {
		t.Fatalf("status below floor = %v, want committed", st)
	}
}

// TestAutoTruncateHorizon: AutoTruncate must not pass the oldest active
// xid, nor a commit some active transaction's snapshot does not include.
func TestAutoTruncateHorizon(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	m.Commit(a)

	// pin began after a's commit: a is truncatable.
	pin := m.Begin()
	pinSnap := m.TakeSnapshot()

	// b commits after pin's snapshot: NOT truncatable while pin lives.
	b := m.Begin()
	m.Commit(b)

	m.AutoTruncate()
	if st, _ := m.Status(a); st != StatusCommitted {
		t.Fatalf("a should remain committed, got %v", st)
	}
	if m.lookup(a) != nil {
		t.Fatal("a (committed below every active snapshot) should be truncated")
	}
	if m.lookup(b) == nil {
		t.Fatal("b (committed after an active snapshot) must not be truncated")
	}
	if pinSnap.Sees(b) {
		t.Fatal("pin's snapshot must not see b")
	}
	if !pinSnap.Sees(a) {
		t.Fatal("pin's snapshot must see a, truncated or not")
	}

	// Once pin finishes and a fresh transaction (whose snapshot covers
	// b) is the oldest active, b becomes truncatable; pin's aborted
	// tombstone survives below the floor.
	c := m.Begin()
	m.Abort(pin)
	m.AutoTruncate()
	if m.lookup(b) != nil {
		t.Fatal("b should be truncated once every active snapshot covers it")
	}
	if st, _ := m.Status(pin); st != StatusAborted {
		t.Fatalf("pin tombstone below floor reports %v, want aborted", st)
	}
	if st, _ := m.Status(b); st != StatusCommitted {
		t.Fatalf("truncated b reports %v, want committed", st)
	}
	_ = c
}

// TestAutoTruncateStopsAtActiveXID: an old active transaction pins the
// floor even when everything around it committed.
func TestAutoTruncateStopsAtActiveXID(t *testing.T) {
	m := NewManager()
	old := m.Begin() // xid 1, stays active
	for i := 0; i < 10; i++ {
		m.Commit(m.Begin())
	}
	m.AutoTruncate()
	if got := TxID(m.logFloor.Load()); got != old {
		t.Fatalf("floor = %d, want pinned at active xid %d", got, old)
	}
	m.Commit(old)
	m.AutoTruncate()
	if got, want := TxID(m.logFloor.Load()), m.NextXID(); got != want {
		t.Fatalf("floor after drain = %d, want %d", got, want)
	}
	if m.LogSize() != 0 {
		t.Fatalf("log size after full truncation = %d, want 0", m.LogSize())
	}
}

// TestCSNMonotonicUnderConcurrency hammers Commit/Abort from many
// goroutines and asserts the commit sequence is assigned without gaps
// visible to snapshots, strictly monotone, and wrap-free: at quiesce,
// CurrentSeq equals the number of commits, and every published CSN was
// observed exactly once.
func TestCSNMonotonicUnderConcurrency(t *testing.T) {
	m := NewManager()
	const workers = 8
	const perWorker = 400
	var commits atomic.Int64
	seqs := make([]atomic.Int64, workers*perWorker+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var last SeqNo
			for i := 0; i < perWorker; i++ {
				x := m.Begin()
				if (i+w)%3 == 0 {
					m.Abort(x)
					continue
				}
				seq := m.Commit(x)
				if seq <= last {
					t.Errorf("commit seq %d not above this goroutine's previous %d", seq, last)
					return
				}
				last = seq
				commits.Add(1)
				seqs[seq].Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got, want := m.CurrentSeq(), SeqNo(commits.Load()); got != want {
		t.Fatalf("published seq %d != commit count %d", got, want)
	}
	for s := SeqNo(1); s <= m.CurrentSeq(); s++ {
		if n := seqs[s].Load(); n != 1 {
			t.Fatalf("seq %d assigned %d times", s, n)
		}
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("active = %d, want 0", m.ActiveCount())
	}
}

// TestDoneClosesOnlyAfterCommitVisible pins the wakeup ordering: a
// waiter woken by Done(xid) must find the commit published — a snapshot
// taken at wakeup sees it, and Status resolves it committed with a CSN
// at or below that snapshot's.
func TestDoneClosesOnlyAfterCommitVisible(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Manager) {
		for i := 0; i < 200; i++ {
			x := m.Begin()
			done := m.Done(x)
			errc := make(chan string, 1)
			go func() {
				<-done
				snap := m.TakeSnapshot()
				st, seq := m.Status(x)
				switch {
				case st != StatusCommitted:
					errc <- "woken waiter saw status " + st.String()
				case seq > snap.SeqNo:
					errc <- "woken waiter's snapshot predates the commit"
				case !snap.Sees(x):
					errc <- "woken waiter's snapshot does not see the commit"
				default:
					errc <- ""
				}
			}()
			m.Commit(x)
			if msg := <-errc; msg != "" {
				t.Fatalf("iteration %d: %s", i, msg)
			}
		}
	})
}

// TestCSNPublicationWindowFenced parks a committer between CSN
// assignment and commit-log publication and proves the fence: a snapshot
// taken inside the window excludes the commit entirely — before AND
// after publication — while a snapshot taken after the commit completes
// includes it.
func TestCSNPublicationWindowFenced(t *testing.T) {
	inWindow := make(chan struct{})
	release := make(chan struct{})
	var armed atomic.Bool
	m := New(Config{OnCSNPublish: func(xid TxID, seq SeqNo) {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-release
		}
	}})
	x := m.Begin()
	armed.Store(true)
	committed := make(chan SeqNo, 1)
	go func() { committed <- m.Commit(x) }()

	<-inWindow
	snap := m.TakeSnapshot()
	if snap.Sees(x) {
		t.Fatal("snapshot in the publication window must not see the unpublished commit")
	}
	if !snap.ConcurrentWith(x) {
		t.Fatal("unpublished commit must still test concurrent")
	}
	close(release)
	seq := <-committed

	// The SAME snapshot still excludes the commit after publication:
	// all or nothing.
	if snap.Sees(x) {
		t.Fatal("fenced snapshot changed its mind after publication (torn snapshot)")
	}
	if seq != SeqNo(1) || snap.SeqNo >= seq {
		t.Fatalf("window snapshot CSN %d should predate the commit CSN %d", snap.SeqNo, seq)
	}
	if after := m.TakeSnapshot(); !after.Sees(x) {
		t.Fatal("post-commit snapshot must see the commit")
	}
}

// TestCSNPublicationWindowTornWithoutFencing is the ablation: with
// DisableCSNFencing, snapshots read the assignment counter, and a
// snapshot taken in the window first resolves the commit in-progress,
// then — same snapshot — committed. That torn behaviour is exactly what
// the fence exists to forbid.
func TestCSNPublicationWindowTornWithoutFencing(t *testing.T) {
	inWindow := make(chan struct{})
	release := make(chan struct{})
	var armed atomic.Bool
	m := New(Config{DisableCSNFencing: true, OnCSNPublish: func(TxID, SeqNo) {
		if armed.CompareAndSwap(true, false) {
			close(inWindow)
			<-release
		}
	}})
	x := m.Begin()
	armed.Store(true)
	committed := make(chan SeqNo, 1)
	go func() { committed <- m.Commit(x) }()

	<-inWindow
	snap := m.TakeSnapshot()
	if snap.Sees(x) {
		t.Fatal("commit log not yet published: lookup cannot resolve the commit")
	}
	close(release)
	seq := <-committed
	if snap.SeqNo < seq {
		t.Fatalf("ablated snapshot read the assignment counter: CSN %d should cover the in-window commit %d", snap.SeqNo, seq)
	}
	if !snap.Sees(x) {
		t.Fatal("ablation lost the race shape: the same snapshot should now resolve the commit visible")
	}
	// With fencing this flip is impossible; the engine-level harness in
	// the root package shows the resulting torn read on real rows.
}

// TestLegacySnapshotTakesSharedLock pins the satellite bugfix: the
// legacy TakeSnapshot only reads, so it must hold the global mutex in
// shared mode. The test parks one snapshotter inside the critical
// section and requires a second snapshot to complete meanwhile — under
// the old exclusive lock this deadlocks.
func TestLegacySnapshotTakesSharedLock(t *testing.T) {
	m := New(Config{DisableCSNSnapshots: true})
	m.Begin()
	parked := make(chan struct{})
	release := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	m.testSnapshotHook = func() {
		if armed.CompareAndSwap(true, false) {
			close(parked)
			<-release
		}
	}
	go m.TakeSnapshot()
	<-parked

	second := make(chan *Snapshot, 1)
	go func() { second <- m.TakeSnapshot() }()
	select {
	case snap := <-second:
		if len(snap.InProgress) != 1 {
			t.Fatalf("overlapping snapshot content wrong: %d in-progress, want 1", len(snap.InProgress))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second legacy TakeSnapshot blocked behind a parked one: snapshot path holds the write lock")
	}
	close(release)
}

// TestLegacySnapshotStillExcludesRacingBegin: the shared-mode snapshot
// must stay consistent with exclusive-mode Begin — no xid may appear
// assigned-but-untracked to a snapshot.
func TestLegacySnapshotConsistentUnderLoad(t *testing.T) {
	m := New(Config{DisableCSNSnapshots: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				x := m.Begin()
				m.Commit(x)
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		snap := m.TakeSnapshot()
		// Legacy invariant: every xid in [Xmin, Xmax) not in
		// InProgress must have finished; a committed one must be
		// visible.
		for xid := snap.Xmin; xid < snap.Xmax; xid++ {
			if _, inProg := snap.InProgress[xid]; inProg {
				continue
			}
			if st, _ := m.Status(xid); st == StatusInProgress {
				t.Fatalf("snapshot %d claims xid %d finished but it is in progress", i, xid)
			}
		}
	}
	close(stop)
	wg.Wait()
}
