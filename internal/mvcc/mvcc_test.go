package mvcc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBeginAssignsIncreasingXIDs(t *testing.T) {
	m := NewManager()
	a, b, c := m.Begin(), m.Begin(), m.Begin()
	if !(a < b && b < c) {
		t.Fatalf("xids not increasing: %d %d %d", a, b, c)
	}
	if a == InvalidTxID {
		t.Fatal("first xid must not be the invalid id")
	}
}

func TestSnapshotExcludesInProgress(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	snap := m.TakeSnapshot()
	if snap.Sees(a) {
		t.Fatal("snapshot must not see in-progress transaction")
	}
	if !snap.ConcurrentWith(a) {
		t.Fatal("in-progress transaction is concurrent with the snapshot")
	}
	m.Commit(a)
	if snap.Sees(a) {
		t.Fatal("old snapshot must not see a commit that happened after it")
	}
	snap2 := m.TakeSnapshot()
	if !snap2.Sees(a) {
		t.Fatal("new snapshot must see the committed transaction")
	}
	if !m.Visible(a, snap2) {
		t.Fatal("Visible must confirm committed + in snapshot")
	}
}

func TestSnapshotExcludesFutureXIDs(t *testing.T) {
	m := NewManager()
	snap := m.TakeSnapshot()
	b := m.Begin()
	m.Commit(b)
	if snap.Sees(b) {
		t.Fatal("snapshot must not see transactions started after it")
	}
	if !snap.ConcurrentWith(b) {
		t.Fatal("later transaction counts as concurrent")
	}
}

func TestAbortedNeverVisible(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	m.Abort(a)
	snap := m.TakeSnapshot()
	if m.Visible(a, snap) {
		t.Fatal("aborted transaction must never be visible")
	}
	if st, _ := m.Status(a); st != StatusAborted {
		t.Fatalf("status = %v, want aborted", st)
	}
}

func TestCommitSeqsAreStrictlyIncreasing(t *testing.T) {
	m := NewManager()
	var last SeqNo
	for i := 0; i < 100; i++ {
		x := m.Begin()
		seq := m.Commit(x)
		if seq <= last {
			t.Fatalf("commit seq %d not greater than previous %d", seq, last)
		}
		last = seq
	}
}

func TestSnapshotSeqNoOrdersCommits(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	seqA := m.Commit(a)
	snap := m.TakeSnapshot()
	b := m.Begin()
	seqB := m.Commit(b)
	if !(seqA <= snap.SeqNo) {
		t.Fatal("a committed before the snapshot")
	}
	if seqB <= snap.SeqNo {
		t.Fatal("b committed after the snapshot")
	}
}

func TestDoneChannelClosesOnFinish(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	done := m.Done(a)
	select {
	case <-done:
		t.Fatal("done closed before finish")
	default:
	}
	m.Commit(a)
	<-done // must not hang

	// Done of a finished transaction is already closed.
	<-m.Done(a)
}

func TestOldestActiveXID(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if got := m.OldestActiveXID(); got != a {
		t.Fatalf("oldest = %d, want %d", got, a)
	}
	m.Commit(a)
	if got := m.OldestActiveXID(); got != b {
		t.Fatalf("oldest = %d, want %d", got, b)
	}
	m.Commit(b)
	if got := m.OldestActiveXID(); got != m.NextXID() {
		t.Fatalf("oldest with none active = %d, want next xid %d", got, m.NextXID())
	}
}

func TestTruncateLog(t *testing.T) {
	m := NewManager()
	var xids []TxID
	for i := 0; i < 10; i++ {
		x := m.Begin()
		m.Commit(x)
		xids = append(xids, x)
	}
	m.TruncateLog(xids[5])
	if m.LogSize() != 5 {
		t.Fatalf("log size = %d, want 5", m.LogSize())
	}
	// Truncated xids report committed.
	if st, _ := m.Status(xids[0]); st != StatusCommitted {
		t.Fatalf("truncated xid status = %v, want committed", st)
	}
}

func TestConcurrentBeginCommit(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				x := m.Begin()
				if j%2 == 0 {
					m.Commit(x)
				} else {
					m.Abort(x)
				}
			}
		}()
	}
	wg.Wait()
	if m.ActiveCount() != 0 {
		t.Fatalf("active = %d, want 0", m.ActiveCount())
	}
}

// Property: a snapshot sees exactly the transactions that committed
// before it was taken.
func TestQuickSnapshotVisibility(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewManager()
		committedBefore := map[TxID]bool{}
		var open []TxID
		for _, commit := range ops {
			if commit && len(open) > 0 {
				x := open[0]
				open = open[1:]
				m.Commit(x)
				committedBefore[x] = true
			} else {
				open = append(open, m.Begin())
			}
		}
		snap := m.TakeSnapshot()
		// Everything committed so far must be visible.
		for x := range committedBefore {
			if !m.Visible(x, snap) {
				return false
			}
		}
		// Everything still open must be invisible and concurrent.
		for _, x := range open {
			if m.Visible(x, snap) || !snap.ConcurrentWith(x) {
				return false
			}
		}
		// A transaction committing after the snapshot stays invisible.
		late := m.Begin()
		m.Commit(late)
		return !m.Visible(late, snap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
