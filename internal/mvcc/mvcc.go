// Package mvcc implements the multiversion concurrency control substrate
// that PostgreSQL's SSI implementation builds on: transaction identifiers,
// PostgreSQL-style snapshots (xmin / xmax / in-progress set), a commit log
// recording the fate of every transaction, and monotonically increasing
// commit sequence numbers.
//
// Commit sequence numbers are central to the SSI machinery in
// internal/core: the commit-ordering optimization (§3.3.1 of the paper)
// and the read-only snapshot ordering rule (§4.1) both compare the order
// in which transactions committed, and safe-snapshot detection compares a
// transaction's commit against another's snapshot time.
package mvcc

import (
	"fmt"
	"sync"
)

// TxID identifies a transaction. The zero value is invalid (never
// assigned), mirroring PostgreSQL's InvalidTransactionId.
type TxID uint64

// InvalidTxID is the zero, never-assigned transaction ID.
const InvalidTxID TxID = 0

// SeqNo is a commit sequence number. Sequence numbers are assigned from a
// single counter at commit time, so comparing two SeqNos orders the
// commits. The zero value means "not committed" / "no sequence number".
type SeqNo uint64

// InvalidSeqNo is the zero, never-assigned commit sequence number.
const InvalidSeqNo SeqNo = 0

// Status is the state of a transaction as recorded in the commit log.
type Status int8

// Transaction states.
const (
	StatusInProgress Status = iota
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusInProgress:
		return "in-progress"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// Snapshot is a consistent view of the database, represented (as in
// PostgreSQL) by the set of transactions whose effects are visible.
// A transaction xid's effects are visible to the snapshot iff
//
//	xid < Xmax, xid not in InProgress, and xid committed.
//
// Transactions that commit after the snapshot was taken are either in the
// InProgress set or have xid >= Xmax, so the snapshot never sees them.
type Snapshot struct {
	// Xmin is the lowest transaction ID that was active when the
	// snapshot was taken. Every committed xid < Xmin is visible
	// without consulting InProgress.
	Xmin TxID
	// Xmax is the first transaction ID that was unassigned when the
	// snapshot was taken. No xid >= Xmax is visible.
	Xmax TxID
	// InProgress holds the transactions with Xmin <= xid < Xmax that
	// were still running when the snapshot was taken.
	InProgress map[TxID]struct{}
	// SeqNo is the value of the commit-sequence counter when the
	// snapshot was taken. A transaction T committed before this
	// snapshot iff T's commit SeqNo <= this value.
	SeqNo SeqNo
}

// Sees reports whether xid is in the set of transactions visible to the
// snapshot, assuming xid ultimately committed. Callers must additionally
// verify with the Manager that xid committed (see Manager.Visible).
func (s *Snapshot) Sees(xid TxID) bool {
	if xid >= s.Xmax {
		return false
	}
	if xid < s.Xmin {
		return true
	}
	_, active := s.InProgress[xid]
	return !active
}

// ConcurrentWith reports whether xid was in flight when the snapshot was
// taken — i.e. the snapshot does not include it even if it later
// committed. This is the "concurrent transaction" test used throughout
// the SSI layer: rw-antidependencies occur only between concurrent
// transactions (Corollary 2 of the paper).
func (s *Snapshot) ConcurrentWith(xid TxID) bool {
	if xid >= s.Xmax {
		return true
	}
	_, active := s.InProgress[xid]
	return active
}

// txRecord is a commit-log entry.
type txRecord struct {
	status    Status
	commitSeq SeqNo
}

// Manager assigns transaction IDs, takes snapshots, and records
// transaction fates in an in-memory commit log (PostgreSQL's clog).
// It also provides per-transaction done channels so that writers can
// block waiting for a tuple lock holder to finish, the way PostgreSQL
// blocks on a transaction's xid lock.
type Manager struct {
	mu        sync.RWMutex
	nextXID   TxID
	commitSeq SeqNo
	active    map[TxID]*activeTx
	log       map[TxID]txRecord
	// logFloor is the lowest xid still present in log; entries below
	// it have been truncated and are known committed.
	logFloor TxID
}

type activeTx struct {
	xid  TxID
	done chan struct{}
}

// NewManager returns a Manager ready for use. The first assigned
// transaction ID is 1.
func NewManager() *Manager {
	return &Manager{
		nextXID:  1,
		active:   make(map[TxID]*activeTx),
		log:      make(map[TxID]txRecord),
		logFloor: 1,
	}
}

// Begin assigns a new transaction ID and marks it in progress.
func (m *Manager) Begin() TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	xid := m.nextXID
	m.nextXID++
	m.active[xid] = &activeTx{xid: xid, done: make(chan struct{})}
	m.log[xid] = txRecord{status: StatusInProgress}
	return xid
}

// TakeSnapshot returns a snapshot of the transactions visible right now.
// The snapshot excludes all in-progress transactions, including the
// caller's own xid if it has one; storage-level visibility checks treat a
// transaction's own writes specially.
func (m *Manager) TakeSnapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := &Snapshot{
		Xmin:       m.nextXID,
		Xmax:       m.nextXID,
		InProgress: make(map[TxID]struct{}, len(m.active)),
		SeqNo:      m.commitSeq,
	}
	for xid := range m.active {
		if xid < snap.Xmin {
			snap.Xmin = xid
		}
		snap.InProgress[xid] = struct{}{}
	}
	return snap
}

// Commit marks xid committed, assigns it the next commit sequence number,
// and wakes any waiters. It returns the assigned sequence number.
func (m *Manager) Commit(xid TxID) SeqNo {
	m.mu.Lock()
	a, ok := m.active[xid]
	if !ok {
		m.mu.Unlock()
		panic(fmt.Sprintf("mvcc: Commit of non-active transaction %d", xid))
	}
	m.commitSeq++
	seq := m.commitSeq
	m.log[xid] = txRecord{status: StatusCommitted, commitSeq: seq}
	delete(m.active, xid)
	m.mu.Unlock()
	close(a.done)
	return seq
}

// Abort marks xid aborted and wakes any waiters.
func (m *Manager) Abort(xid TxID) {
	m.mu.Lock()
	a, ok := m.active[xid]
	if !ok {
		m.mu.Unlock()
		panic(fmt.Sprintf("mvcc: Abort of non-active transaction %d", xid))
	}
	m.log[xid] = txRecord{status: StatusAborted}
	delete(m.active, xid)
	m.mu.Unlock()
	close(a.done)
}

// Status returns the recorded fate of xid and, if committed, its commit
// sequence number. Transactions below the truncated region of the log are
// reported committed with an unknown (zero) sequence number.
func (m *Manager) Status(xid TxID) (Status, SeqNo) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if xid < m.logFloor {
		return StatusCommitted, InvalidSeqNo
	}
	rec, ok := m.log[xid]
	if !ok {
		return StatusAborted, InvalidSeqNo
	}
	return rec.status, rec.commitSeq
}

// IsCommitted reports whether xid committed.
func (m *Manager) IsCommitted(xid TxID) bool {
	st, _ := m.Status(xid)
	return st == StatusCommitted
}

// CommitSeq returns xid's commit sequence number, or InvalidSeqNo if xid
// has not committed.
func (m *Manager) CommitSeq(xid TxID) SeqNo {
	st, seq := m.Status(xid)
	if st != StatusCommitted {
		return InvalidSeqNo
	}
	return seq
}

// Visible reports whether the effects of xid are visible to snap: xid is
// in the snapshot's visible set and xid committed.
func (m *Manager) Visible(xid TxID, snap *Snapshot) bool {
	if !snap.Sees(xid) {
		return false
	}
	return m.IsCommitted(xid)
}

// Done returns a channel that is closed when xid commits or aborts.
// If xid has already finished, the returned channel is already closed.
func (m *Manager) Done(xid TxID) <-chan struct{} {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if a, ok := m.active[xid]; ok {
		return a.done
	}
	closed := make(chan struct{})
	close(closed)
	return closed
}

// ActiveCount returns the number of in-progress transactions.
func (m *Manager) ActiveCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.active)
}

// ActiveXIDs returns the in-progress transaction IDs in unspecified order.
func (m *Manager) ActiveXIDs() []TxID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	xids := make([]TxID, 0, len(m.active))
	for xid := range m.active {
		xids = append(xids, xid)
	}
	return xids
}

// CurrentSeq returns the current value of the commit-sequence counter.
func (m *Manager) CurrentSeq() SeqNo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.commitSeq
}

// NextXID returns the next transaction ID that will be assigned.
func (m *Manager) NextXID() TxID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nextXID
}

// OldestActiveXID returns the lowest in-progress xid, or the next xid to
// be assigned if no transaction is active. The SSI layer uses this to
// decide when committed-transaction state can be cleaned up.
func (m *Manager) OldestActiveXID() TxID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	oldest := m.nextXID
	for xid := range m.active {
		if xid < oldest {
			oldest = xid
		}
	}
	return oldest
}

// TruncateLog discards commit-log entries for transactions with
// xid < floor, which must all have committed or aborted. PostgreSQL
// similarly truncates pg_clog once no snapshot can reference old xids.
// Entries for aborted transactions below the floor must not be truncated
// by callers that still hold versions created by them; the engine only
// truncates below the oldest snapshot's xmin after vacuuming.
func (m *Manager) TruncateLog(floor TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if floor <= m.logFloor {
		return
	}
	for xid := range m.log {
		if xid < floor {
			delete(m.log, xid)
		}
	}
	m.logFloor = floor
}

// LogSize returns the number of entries currently in the commit log.
func (m *Manager) LogSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.log)
}
