// Package mvcc implements the multiversion concurrency control substrate
// that PostgreSQL's SSI implementation builds on: transaction identifiers,
// snapshots, a commit log recording the fate of every transaction, and
// monotonically increasing commit sequence numbers (CSNs).
//
// Commit sequence numbers are central to the SSI machinery in
// internal/core: the commit-ordering optimization (§3.3.1 of the paper)
// and the read-only snapshot ordering rule (§4.1) both compare the order
// in which transactions committed, and safe-snapshot detection compares a
// transaction's commit against another's snapshot time.
//
// # Snapshot representations
//
// The default snapshot is CSN-based, the direction PostgreSQL's own
// CSN-snapshot work takes to shrink ProcArrayLock: a snapshot is nothing
// but the value of the commit-sequence counter at the instant it was
// taken, and "xid is visible" means "xid's commit CSN is known and <= the
// snapshot CSN" — a lookup in a sharded commit log. Taking a snapshot is
// a single atomic load; Begin and Commit touch only one commit-log shard
// plus a handful of atomics; no global mutex exists on any lifecycle
// path.
//
// Commit makes CSN assignment and commit-log publication one atomic step
// for snapshotters by performing both inside the commit-log shard's
// critical section: a commit locks its shard, increments the CSN counter,
// and writes (xid → CSN, committed) before unlocking. A snapshot is a
// plain atomic read of the counter; if it reads a CSN at or above some
// commit's, that commit's counter increment already happened inside the
// committer's critical section, so any subsequent commit-log lookup —
// which takes the shard's read lock — serializes behind the publication
// and resolves the commit. A reader can at worst block momentarily on the
// shard of a mid-publication commit; it can never observe the
// assigned-but-unpublished state. Config.DisableCSNFencing (test-only)
// moves the CSN increment out of the critical section, reopening the
// assignment→publication window; Config.OnCSNPublish parks a committer
// deterministically at the window's location (degenerate when fenced).
//
// The legacy xmin/xmax/in-progress-set representation is kept behind
// Config.DisableCSNSnapshots for ablation and A/B benchmarking: there,
// TakeSnapshot copies the whole active set (O(active)) under a global
// reader/writer mutex that every Begin/Commit/Abort takes exclusively.
//
// # Commit-log truncation
//
// The log is truncated in integration with the engine's epoch reclaimer
// (internal/core/reclaim.go), which calls AutoTruncate on its background
// passes. A committed entry may be dropped once (a) its xid is below
// every active transaction's xid and (b) its commit CSN is at or below
// every active transaction's begin-time published CSN — then every
// present or future snapshot already includes it, and Status/Sees resolve
// absent xids below the floor as "committed long ago". Aborted entries
// are kept as tombstones (an aborted xid must never resolve committed
// while a heap version stamped with it could still be read); the engine's
// Vacuum drops them with DropAbortedBelow once the heap holds no trace of
// them. Callers that take standalone snapshots must pin them with an
// active transaction for the duration of use, as DB.Vacuum does.
package mvcc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TxID identifies a transaction. The zero value is invalid (never
// assigned), mirroring PostgreSQL's InvalidTransactionId.
type TxID uint64

// InvalidTxID is the zero, never-assigned transaction ID.
const InvalidTxID TxID = 0

// SeqNo is a commit sequence number (CSN). Sequence numbers are assigned
// from a single counter at commit time, so comparing two SeqNos orders
// the commits. The zero value means "not committed" / "no sequence
// number".
type SeqNo uint64

// InvalidSeqNo is the zero, never-assigned commit sequence number.
const InvalidSeqNo SeqNo = 0

// Status is the state of a transaction as recorded in the commit log.
type Status int8

// Transaction states.
const (
	StatusInProgress Status = iota
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusInProgress:
		return "in-progress"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// Config tunes a Manager. The zero value is the production configuration:
// CSN snapshots, fencing on, 64 commit-log shards.
type Config struct {
	// DisableCSNSnapshots selects the legacy xmin/xmax/in-progress-set
	// snapshot representation: TakeSnapshot copies the active set under
	// a global mutex that every lifecycle operation serializes on.
	// Ablation / A-B benchmarking knob.
	DisableCSNSnapshots bool
	// DisableCSNFencing (test-only, CSN mode) moves a commit's CSN
	// assignment out of the shard critical section that publishes the
	// commit-log record, reopening the window between the two: a
	// snapshot taken in the window carries a CSN covering the commit but
	// can resolve it first as in-progress and later as committed — a
	// torn snapshot. Never set it in production.
	DisableCSNFencing bool
	// OnCSNPublish, if non-nil, is invoked during Commit at the
	// assignment→publication window, with no Manager lock held: under
	// DisableCSNFencing between the CSN assignment and the commit-log
	// publication (seq is the assigned CSN); fenced, immediately before
	// the atomic assignment+publication step (the window is degenerate
	// and seq is InvalidSeqNo — no CSN exists yet). Test-only
	// interleaving hook (CSN mode); it must not call back into lifecycle
	// methods of the same Manager.
	OnCSNPublish func(xid TxID, seq SeqNo)
	// OnCommitPublish, if non-nil, is invoked inside the commit
	// publication critical section, after xid's committed fate and CSN
	// are written but before the shard mutex is released. It is the
	// engine's WAL position-reservation point: because it runs before
	// any snapshot can observe the commit, a transaction that observed
	// this commit's writes always reserves a later log position, making
	// every log prefix dependency-closed. The hook must be cheap and
	// non-blocking (no I/O, no lifecycle calls on this Manager); it runs
	// under a commit-log shard mutex on every commit path, including the
	// ablation modes. Set it before the Manager sees any traffic (see
	// SetOnCommitPublish).
	OnCommitPublish func(xid TxID, seq SeqNo)
	// LogPartitions is the number of hash shards in the commit log.
	// Rounded up to a power of two; defaults to 64.
	LogPartitions int
}

func (c Config) withDefaults() Config {
	if c.LogPartitions <= 0 {
		c.LogPartitions = 64
	}
	n := 1
	for n < c.LogPartitions {
		n <<= 1
	}
	c.LogPartitions = n
	return c
}

// Snapshot is a consistent view of the database. In the default CSN
// representation it is just the published commit-sequence counter value
// at the instant it was taken (SeqNo); visibility is resolved against the
// Manager's commit log. In the legacy representation it carries, as in
// pre-CSN PostgreSQL, the set of transactions whose effects are visible:
// a transaction xid's effects are visible iff xid < Xmax, xid not in
// InProgress, and xid committed. Under both representations,
// transactions that commit after the snapshot was taken are never seen.
type Snapshot struct {
	// Xmin is the lowest transaction ID that was active when the
	// snapshot was taken (legacy representation only). Every committed
	// xid < Xmin is visible without consulting InProgress.
	Xmin TxID
	// Xmax is the first transaction ID that was unassigned when the
	// snapshot was taken (legacy representation only).
	Xmax TxID
	// InProgress holds the transactions with Xmin <= xid < Xmax that
	// were still running when the snapshot was taken (legacy
	// representation only; nil for CSN snapshots).
	InProgress map[TxID]struct{}
	// SeqNo is the value of the commit-sequence counter when the
	// snapshot was taken. A transaction T committed before this
	// snapshot iff T's commit SeqNo <= this value. For CSN snapshots
	// this field alone IS the snapshot.
	SeqNo SeqNo
	// csn, when non-nil, marks this as a CSN snapshot and names the
	// Manager whose commit log resolves visibility lookups.
	csn *Manager
}

// Sees reports whether xid is in the set of transactions visible to the
// snapshot, assuming xid ultimately committed. Callers must additionally
// verify with the Manager that xid committed (see Manager.Visible): for a
// CSN snapshot, Sees of an uncommitted xid is always false, but for a
// legacy snapshot an aborted xid that finished before the snapshot still
// tests true here.
func (s *Snapshot) Sees(xid TxID) bool {
	if s.csn != nil {
		seq, known := s.csn.commitCSN(xid)
		return known && seq <= s.SeqNo
	}
	if xid >= s.Xmax {
		return false
	}
	if xid < s.Xmin {
		return true
	}
	_, active := s.InProgress[xid]
	return !active
}

// SeesCommitted reports whether a transaction already known committed,
// with commit sequence number seq (InvalidSeqNo when unknown because the
// entry was truncated below the log floor — then the commit predates
// every live snapshot), is visible to the snapshot. It is the fast path
// for callers that just resolved xid's fate via Manager.Status: a CSN
// snapshot answers from seq alone instead of paying a second commit-log
// lookup for the same xid.
func (s *Snapshot) SeesCommitted(xid TxID, seq SeqNo) bool {
	if s.csn != nil {
		return seq == InvalidSeqNo || seq <= s.SeqNo
	}
	return s.Sees(xid)
}

// ConcurrentWith reports whether xid was in flight when the snapshot was
// taken — i.e. the snapshot does not include it even if it later
// committed. This is the "concurrent transaction" test used throughout
// the SSI layer: rw-antidependencies occur only between concurrent
// transactions (Corollary 2 of the paper). For a CSN snapshot the rule
// is exactly "commit CSN unknown or greater than the snapshot CSN"; note
// that an *aborted* xid therefore always tests concurrent under CSN
// (its commit CSN never becomes known), while legacy snapshots report an
// xid that aborted before the snapshot as not concurrent. The SSI layer
// only applies this test to in-progress or committed writers, where the
// two representations agree.
func (s *Snapshot) ConcurrentWith(xid TxID) bool {
	if s.csn != nil {
		seq, known := s.csn.commitCSN(xid)
		return !known || seq > s.SeqNo
	}
	if xid >= s.Xmax {
		return true
	}
	_, active := s.InProgress[xid]
	return active
}

// txRecord is a commit-log entry: one transaction's fate, its commit CSN
// once assigned, the CSN-counter value observed when it began (the pin
// the truncation horizon is computed from), and the done channel writers
// block on. Fields are guarded by the owning shard's mutex; done is
// closed exactly once, after the commit is published (or on abort).
type txRecord struct {
	status    Status
	commitSeq SeqNo
	beginSeq  SeqNo
	// finishing marks a record whose Commit is in flight under the
	// DisableCSNFencing ablation (CSN assigned but not yet published);
	// it makes a double-finish a clean panic instead of a lost update.
	finishing bool
	done      chan struct{}
}

// logShard is one shard of the commit log plus the active subset of its
// transactions.
type logShard struct {
	mu     sync.RWMutex //ssi:lock level=40 name=mvcc.logShard
	recs   map[TxID]*txRecord
	active map[TxID]struct{}
}

// Manager assigns transaction IDs, takes snapshots, and records
// transaction fates in an in-memory commit log (PostgreSQL's clog).
// It also provides per-transaction done channels so that writers can
// block waiting for a tuple lock holder to finish, the way PostgreSQL
// blocks on a transaction's xid lock.
//
// Lock levels (all leaves with respect to the engine's locks, see
// internal/core/partition.go): mu (legacy mode only) > one logShard.mu;
// truncMu serializes truncations and orders before shard mutexes. CSN
// mode never takes mu.
type Manager struct {
	cfg       Config
	shards    []logShard
	shardMask uint64

	// lastXID is the most recently assigned transaction ID.
	lastXID atomic.Uint64
	// assignedSeq is the CSN counter. Commits increment it inside their
	// commit-log shard's critical section (see the package comment), so
	// every commit whose CSN a snapshot has observed is resolvable in
	// the log by the time the snapshot can look it up.
	assignedSeq atomic.Uint64
	// logFloor is the lowest xid that may still have a commit-log
	// entry; absent entries below it are known committed (aborted
	// entries below it survive as tombstones).
	logFloor atomic.Uint64
	// activeCount counts in-progress transactions.
	activeCount atomic.Int64

	// truncMu serializes TruncateLog/AutoTruncate passes. The three
	// mutexes below are level-ordered (trunc < begin < global <
	// logShard) and ssilint machine-checks that order; the canonical
	// table is in docs/invariants.md.
	truncMu sync.Mutex //ssi:lock level=10 name=mvcc.trunc

	// beginMu fences Begin's xid-assignment→shard-registration window.
	// Begin holds it SHARED across both steps, so Begins never block
	// each other; OldestActiveXID takes it exclusively for one instant
	// before reading lastXID, which guarantees every xid at or below
	// the bound it reads is registered (a Begin preempted between
	// assignment and registration would otherwise be invisible to the
	// scan while holding an xid below the bound, and truncation floors
	// derived from the scan could pass an active transaction).
	beginMu sync.RWMutex //ssi:lock level=20 name=mvcc.begin

	// mu is the legacy-mode global snapshot mutex: with
	// DisableCSNSnapshots, Begin/Commit/Abort hold it exclusively and
	// TakeSnapshot holds it shared (it only reads — see the RLock note
	// on TakeSnapshot). Unused in CSN mode.
	mu sync.RWMutex //ssi:lock level=30 name=mvcc.global
	// testSnapshotHook, if non-nil, runs inside the legacy TakeSnapshot
	// critical section (white-box test hook pinning the shared-lock
	// behaviour).
	testSnapshotHook func()
}

// New returns a Manager with the given configuration. The first assigned
// transaction ID is 1.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:       cfg,
		shards:    make([]logShard, cfg.LogPartitions),
		shardMask: uint64(cfg.LogPartitions - 1),
	}
	for i := range m.shards {
		m.shards[i].recs = make(map[TxID]*txRecord)
		m.shards[i].active = make(map[TxID]struct{})
	}
	m.logFloor.Store(1)
	return m
}

// NewManager returns a Manager with the default (CSN-snapshot)
// configuration.
func NewManager() *Manager {
	return New(Config{})
}

func (m *Manager) shard(xid TxID) *logShard {
	return &m.shards[uint64(xid)&m.shardMask]
}

// lookup returns xid's commit-log record, or nil.
func (m *Manager) lookup(xid TxID) *txRecord {
	sh := m.shard(xid)
	sh.mu.RLock()
	rec := sh.recs[xid]
	sh.mu.RUnlock()
	return rec
}

// commitCSN returns xid's commit CSN and whether it is known committed.
// Absent entries below the truncation floor are committed with an
// unknown (but necessarily snapshot-visible) CSN, reported as
// InvalidSeqNo — Status owns that resolution, including the
// re-read-floor-after-miss dance against concurrent truncation.
func (m *Manager) commitCSN(xid TxID) (SeqNo, bool) {
	st, seq := m.Status(xid)
	return seq, st == StatusCommitted
}

// Begin assigns a new transaction ID and marks it in progress. In CSN
// mode it touches one commit-log shard and two atomics; no global mutex.
func (m *Manager) Begin() TxID {
	if m.cfg.DisableCSNSnapshots {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	m.beginMu.RLock()
	xid := TxID(m.lastXID.Add(1))
	rec := &txRecord{
		status: StatusInProgress,
		// The begin-time CSN pins the truncation horizon: any snapshot
		// this transaction takes reads the counter at or after this
		// load, so commits at or below it are visible to every snapshot
		// the transaction will ever hold.
		beginSeq: SeqNo(m.assignedSeq.Load()),
		done:     make(chan struct{}),
	}
	sh := m.shard(xid)
	sh.mu.Lock()
	sh.recs[xid] = rec
	sh.active[xid] = struct{}{}
	sh.mu.Unlock()
	m.beginMu.RUnlock()
	m.activeCount.Add(1)
	return xid
}

// TakeSnapshot returns a snapshot of the transactions visible right now.
// The snapshot excludes all in-progress transactions, including the
// caller's own xid if it has one; storage-level visibility checks treat a
// transaction's own writes specially.
//
// In CSN mode this is a single atomic load of the CSN counter.
// In legacy mode it copies the active set under the global mutex in
// SHARED mode: the copy only reads, and every mutation of the active set
// or the counters holds the mutex exclusively, so concurrent snapshots
// may overlap each other (they previously serialized on the write lock
// for no reason).
func (m *Manager) TakeSnapshot() *Snapshot {
	if !m.cfg.DisableCSNSnapshots {
		return &Snapshot{SeqNo: SeqNo(m.assignedSeq.Load()), csn: m}
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.testSnapshotHook != nil {
		m.testSnapshotHook()
	}
	next := TxID(m.lastXID.Load()) + 1
	snap := &Snapshot{
		Xmin:       next,
		Xmax:       next,
		InProgress: make(map[TxID]struct{}, m.activeCount.Load()),
		SeqNo:      SeqNo(m.assignedSeq.Load()),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for xid := range sh.active {
			if xid < snap.Xmin {
				snap.Xmin = xid
			}
			snap.InProgress[xid] = struct{}{}
		}
		sh.mu.RUnlock()
	}
	return snap
}

// finishableLocked returns xid's record if it can be committed or
// aborted, panicking (like the pre-CSN implementation) otherwise. Caller
// holds the shard's mutex.
func finishableLocked(sh *logShard, xid TxID, op string) *txRecord {
	rec := sh.recs[xid]
	if rec == nil || rec.status != StatusInProgress || rec.finishing {
		sh.mu.Unlock()
		panic(fmt.Sprintf("mvcc: %s of non-active transaction %d", op, xid))
	}
	return rec
}

// beginFinish claims xid's record for a finish whose CSN assignment
// happens outside the shard critical section (the DisableCSNFencing
// ablation), so a concurrent double-finish is a clean panic instead of a
// lost update.
func (m *Manager) beginFinish(sh *logShard, xid TxID, op string) *txRecord {
	sh.mu.Lock()
	rec := finishableLocked(sh, xid, op)
	rec.finishing = true
	sh.mu.Unlock()
	return rec
}

// Commit marks xid committed, assigns it the next commit sequence number,
// and wakes any waiters. It returns the assigned sequence number.
//
// CSN-mode ordering: inside the commit-log shard's single critical
// section, validate the record, increment the CSN counter, AND publish
// (xid → CSN, committed); then close the done channel. That atomicity is
// what makes a snapshot all-or-nothing: a snapshot whose CSN covers this
// commit observed the counter increment, so its commit-log lookup —
// behind the shard's read lock — cannot run before the record write in
// the same critical section (see the package comment). Under
// DisableCSNFencing the increment happens before the critical section,
// with OnCSNPublish parked in the reopened window.
func (m *Manager) Commit(xid TxID) SeqNo {
	sh := m.shard(xid)
	switch {
	case m.cfg.DisableCSNSnapshots:
		// Deferred so the double-finish panic in finishableLocked does
		// not leak the global mutex to a recovering caller.
		m.mu.Lock()
		defer m.mu.Unlock()
		sh.mu.Lock()
		rec := finishableLocked(sh, xid, "Commit")
		seq := m.publishCommitLocked(sh, rec, xid, InvalidSeqNo)
		m.finishCommit(rec)
		return seq
	case m.cfg.DisableCSNFencing:
		// Ablation: CSN assigned outside the publication critical
		// section; a snapshot taken in between covers the commit but
		// cannot resolve it yet — the torn-snapshot window.
		rec := m.beginFinish(sh, xid, "Commit")
		seq := SeqNo(m.assignedSeq.Add(1))
		if h := m.cfg.OnCSNPublish; h != nil {
			h(xid, seq)
		}
		sh.mu.Lock()
		m.publishCommitLocked(sh, rec, xid, seq)
		m.finishCommit(rec)
		return seq
	default:
		if h := m.cfg.OnCSNPublish; h != nil {
			h(xid, InvalidSeqNo)
		}
		sh.mu.Lock()
		rec := finishableLocked(sh, xid, "Commit")
		seq := m.publishCommitLocked(sh, rec, xid, InvalidSeqNo)
		m.finishCommit(rec)
		return seq
	}
}

// publishCommitLocked writes the committed fate (assigning the CSN
// unless the caller pre-assigned one — the DisableCSNFencing ablation)
// and releases the shard mutex the caller holds.
func (m *Manager) publishCommitLocked(sh *logShard, rec *txRecord, xid TxID, seq SeqNo) SeqNo {
	if seq == InvalidSeqNo {
		seq = SeqNo(m.assignedSeq.Add(1))
	}
	rec.status = StatusCommitted
	rec.commitSeq = seq
	delete(sh.active, xid)
	if h := m.cfg.OnCommitPublish; h != nil {
		h(xid, seq)
	}
	sh.mu.Unlock()
	return seq
}

// SetOnCommitPublish installs the Config.OnCommitPublish hook. It must
// be called before the Manager sees any concurrent traffic (the field is
// read without synchronization on the commit path); the engine sets it
// once while opening the database.
func (m *Manager) SetOnCommitPublish(fn func(xid TxID, seq SeqNo)) {
	m.cfg.OnCommitPublish = fn
}

// finishCommit is the shared post-publication tail of every Commit path.
func (m *Manager) finishCommit(rec *txRecord) {
	m.activeCount.Add(-1)
	close(rec.done)
}

// Abort marks xid aborted and wakes any waiters.
func (m *Manager) Abort(xid TxID) {
	sh := m.shard(xid)
	if m.cfg.DisableCSNSnapshots {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	sh.mu.Lock()
	rec := finishableLocked(sh, xid, "Abort")
	rec.status = StatusAborted
	delete(sh.active, xid)
	sh.mu.Unlock()
	m.activeCount.Add(-1)
	close(rec.done)
}

// Status returns the recorded fate of xid and, if committed, its commit
// sequence number. Transactions absent below the truncated region of the
// log are reported committed with an unknown (zero) sequence number;
// aborted transactions below it keep tombstone entries and still report
// aborted (see TruncateLog).
func (m *Manager) Status(xid TxID) (Status, SeqNo) {
	sh := m.shard(xid)
	sh.mu.RLock()
	rec := sh.recs[xid]
	var st Status
	var seq SeqNo
	if rec != nil {
		st, seq = rec.status, rec.commitSeq
	}
	sh.mu.RUnlock()
	if rec == nil {
		if xid < TxID(m.logFloor.Load()) {
			return StatusCommitted, InvalidSeqNo
		}
		return StatusAborted, InvalidSeqNo
	}
	return st, seq
}

// IsCommitted reports whether xid committed.
func (m *Manager) IsCommitted(xid TxID) bool {
	st, _ := m.Status(xid)
	return st == StatusCommitted
}

// CommitSeq returns xid's commit sequence number, or InvalidSeqNo if xid
// has not committed (or committed below the truncation floor).
func (m *Manager) CommitSeq(xid TxID) SeqNo {
	st, seq := m.Status(xid)
	if st != StatusCommitted {
		return InvalidSeqNo
	}
	return seq
}

// Visible reports whether the effects of xid are visible to snap: xid is
// in the snapshot's visible set and xid committed. A transaction's own
// xid is never Visible (it is in progress while it runs); the storage
// layer handles own-writes before consulting the snapshot.
func (m *Manager) Visible(xid TxID, snap *Snapshot) bool {
	st, seq := m.Status(xid)
	return st == StatusCommitted && snap.SeesCommitted(xid, seq)
}

// Done returns a channel that is closed when xid commits or aborts.
// If xid has already finished, the returned channel is already closed.
// The channel closes only after the commit is fully visible: a
// TakeSnapshot after Done(xid) is closed by Commit yields a snapshot
// that Sees xid.
func (m *Manager) Done(xid TxID) <-chan struct{} {
	if rec := m.lookup(xid); rec != nil {
		return rec.done
	}
	closed := make(chan struct{})
	close(closed)
	return closed
}

// ActiveCount returns the number of in-progress transactions.
func (m *Manager) ActiveCount() int {
	return int(m.activeCount.Load())
}

// ActiveXIDs returns the in-progress transaction IDs in unspecified order.
func (m *Manager) ActiveXIDs() []TxID {
	xids := make([]TxID, 0, m.activeCount.Load())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for xid := range sh.active {
			xids = append(xids, xid)
		}
		sh.mu.RUnlock()
	}
	return xids
}

// CurrentSeq returns the current value of the commit-sequence counter:
// the CSN a snapshot taken right now would carry.
func (m *Manager) CurrentSeq() SeqNo {
	return SeqNo(m.assignedSeq.Load())
}

// AdvanceSeq raises the commit-sequence counter to at least seq.
// Recovery calls it after replaying a log whose records carry sequence
// numbers the fresh Manager has never assigned — without it, new commits
// would reuse recovered CSNs and corrupt snapshot visibility. Safe to
// call concurrently with commits; the counter never moves backwards.
func (m *Manager) AdvanceSeq(seq SeqNo) {
	for {
		cur := m.assignedSeq.Load()
		if cur >= uint64(seq) || m.assignedSeq.CompareAndSwap(cur, uint64(seq)) {
			return
		}
	}
}

// NextXID returns the next transaction ID that will be assigned.
func (m *Manager) NextXID() TxID {
	return TxID(m.lastXID.Load()) + 1
}

// OldestActiveXID returns the lowest in-progress xid, or the next xid to
// be assigned if no transaction is active. The SSI layer uses this to
// decide when committed-transaction state can be cleaned up. The answer
// can be stale the moment it returns, but only upward: the returned
// bound never passes an active xid, because the begin fence below
// excludes mid-flight Begins at the instant the bound is read — a Begin
// racing this scan either completed its registration before the fence
// (and is seen by the scan) or assigns an xid above the bound.
func (m *Manager) OldestActiveXID() TxID {
	m.beginMu.Lock()
	oldest := TxID(m.lastXID.Load()) + 1
	m.beginMu.Unlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for xid := range sh.active {
			if xid < oldest {
				oldest = xid
			}
		}
		sh.mu.RUnlock()
	}
	return oldest
}

// minActiveBeginSeq returns the minimum begin-time CSN over the active
// transactions, or the current CSN if none is active.
// Every snapshot any active transaction holds (or will take) has a CSN
// at or above this value, so commits at or below it are visible to every
// present and future snapshot — the truncation horizon.
func (m *Manager) minActiveBeginSeq() SeqNo {
	// Read the fallback bound before the scan. Unlike OldestActiveXID,
	// no begin fence is needed: a Begin this scan misses takes its
	// snapshot after registering, hence after this load, so that
	// snapshot's CSN is at or above the bound read here and covers
	// everything the horizon admits for truncation.
	min := SeqNo(m.assignedSeq.Load())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for xid := range sh.active {
			if rec := sh.recs[xid]; rec != nil && rec.beginSeq < min {
				min = rec.beginSeq
			}
		}
		sh.mu.RUnlock()
	}
	return min
}

// TruncateLog discards committed commit-log entries for transactions with
// xid < floor, which must all have committed or aborted and whose
// commits must be visible to every present and future snapshot (in CSN
// terms: commit CSN at or below every active transaction's begin-time
// published CSN — AutoTruncate computes the largest such floor).
// PostgreSQL similarly truncates pg_clog once no snapshot can reference
// old xids. Entries for aborted transactions below the floor are kept as
// tombstones — an aborted xid must never start resolving "committed"
// while a heap version it stamped could still be read — and are removed
// by DropAbortedBelow once the heap has been vacuumed clean of them.
func (m *Manager) TruncateLog(floor TxID) {
	m.truncMu.Lock()
	defer m.truncMu.Unlock()
	if floor <= TxID(m.logFloor.Load()) {
		return
	}
	// Raise the floor before deleting: a concurrent Status/commitCSN
	// that misses a just-deleted record re-reads the floor and resolves
	// it committed.
	m.logFloor.Store(uint64(floor))
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for xid, rec := range sh.recs {
			if xid < floor && rec.status == StatusCommitted {
				delete(sh.recs, xid)
			}
		}
		sh.mu.Unlock()
	}
}

// autoTruncateScanCap bounds how many xids one AutoTruncate pass
// examines, so a reclaimer tick after a long truncation-free stretch
// does linear work in bounded chunks.
const autoTruncateScanCap = 1 << 16

// AutoTruncate advances the commit-log truncation floor as far as
// currently safe and applies it, returning the new floor. It is called
// by the engine's epoch reclaimer on its background passes; it is safe
// to call concurrently with everything else.
//
// The floor stops at the oldest active xid, at any committed entry whose
// CSN is above the truncation horizon (a small-xid transaction that
// committed late: some active snapshot may not include it yet), and
// after autoTruncateScanCap entries. Absent xids (already truncated, or
// dropped aborted tombstones) are skipped; aborted tombstones are left
// in place below the advanced floor. Unlike TruncateLog's full-shard
// sweep, only the entries the scan just proved reclaimable are deleted,
// so a background pass perturbs concurrent shard traffic as little as
// possible.
func (m *Manager) AutoTruncate() TxID {
	m.truncMu.Lock()
	defer m.truncMu.Unlock()
	limit := m.OldestActiveXID()
	horizon := m.minActiveBeginSeq()
	start := TxID(m.logFloor.Load())
	floor := start
	var victims []TxID
scan:
	for scanned := 0; floor < limit && scanned < autoTruncateScanCap; scanned++ {
		// Field reads are safe unlocked here: every xid below limit is
		// registered and finished (OldestActiveXID's begin fence rules
		// out an unregistered in-flight xid below it), the record's
		// fields quiesced before the finishing critical section
		// released the shard mutex, and lookup's read lock ordered
		// this goroutine after that release.
		rec := m.lookup(floor)
		if rec != nil {
			switch {
			case rec.status == StatusCommitted && rec.commitSeq <= horizon:
				// Visible to every present and future snapshot.
				victims = append(victims, floor)
			case rec.status == StatusAborted:
				// Tombstone: the floor passes it, the entry stays.
			default:
				// In-progress (cannot happen below the oldest active
				// xid, but be conservative) or committed above the
				// horizon: stop here.
				break scan
			}
		}
		floor++
	}
	if floor == start {
		return start
	}
	// Raise the floor before deleting: a concurrent Status/commitCSN
	// that misses a just-deleted record re-reads the floor and resolves
	// it committed.
	m.logFloor.Store(uint64(floor))
	for _, xid := range victims {
		sh := m.shard(xid)
		sh.mu.Lock()
		delete(sh.recs, xid)
		sh.mu.Unlock()
	}
	return floor
}

// DropAbortedBelow removes aborted tombstone entries with xid < floor.
// The caller must guarantee that no heap tuple version stamped (xmin or
// xmax) with an aborted xid below floor remains reachable — the engine's
// Vacuum establishes this by pruning every chain while floor is at or
// below the oldest xid active at the start of its sweep. After the drop,
// such an xid resolves like any other absent xid (committed below the
// truncation floor, aborted above), which no reader can observe anymore.
func (m *Manager) DropAbortedBelow(floor TxID) int {
	m.truncMu.Lock()
	defer m.truncMu.Unlock()
	dropped := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for xid, rec := range sh.recs {
			if xid < floor && rec.status == StatusAborted {
				delete(sh.recs, xid)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// LogSize returns the number of entries currently in the commit log.
func (m *Manager) LogSize() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.recs)
		sh.mu.RUnlock()
	}
	return n
}
