package mvcc

import (
	"sync"
	"sync/atomic"
	"testing"
)

// commitPair is one recently committed transaction.
type commitPair struct {
	xid TxID
	seq SeqNo
}

// commitRing is a fixed-size ring of recently committed (xid, seq)
// pairs, shared between committer and snapshotter goroutines.
type commitRing struct {
	mu      sync.Mutex
	entries [256]commitPair
	n       int
}

func (r *commitRing) push(xid TxID, seq SeqNo) {
	r.mu.Lock()
	r.entries[r.n%len(r.entries)] = commitPair{xid, seq}
	r.n++
	r.mu.Unlock()
}

func (r *commitRing) sample(buf []commitPair) []commitPair {
	r.mu.Lock()
	n := r.n
	if n > len(r.entries) {
		n = len(r.entries)
	}
	buf = append(buf[:0], r.entries[:n]...)
	r.mu.Unlock()
	return buf
}

// TestSnapshotCommitTruncateStress races TakeSnapshot against
// Commit/Abort and reclaimer-style AutoTruncate across commit-log
// partitions, asserting the CSN invariant both ways: a snapshot must see
// every xid whose commit CSN is at or below its own CSN (truncated or
// not), and must never see one whose commit CSN is above it, an aborted
// xid, or an in-progress xid. Run with -race.
//
// Every snapshot checked here is pinned by an active transaction for
// the duration of its use, per the truncation contract (see the mvcc
// package comment): AutoTruncate's horizon covers exactly the snapshots
// of active transactions, the only kind the engine ever holds. An early
// version of this test took unpinned snapshots and duly watched
// truncation resolve post-snapshot commits as "committed long ago".
func TestSnapshotCommitTruncateStress(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Manager) {
		const committers = 4
		const snapshotters = 3
		perWorker := 250
		if testing.Short() {
			perWorker = 60
		}
		var ring commitRing
		var stop atomic.Bool
		var commitWG, auxWG sync.WaitGroup

		for w := 0; w < committers; w++ {
			commitWG.Add(1)
			go func(w int) {
				defer commitWG.Done()
				for i := 0; i < perWorker && !t.Failed(); i++ {
					// pin holds the iteration's snapshots in the
					// truncation horizon.
					pin := m.Begin()
					x := m.Begin()
					if (i+w)%4 == 0 {
						// An in-progress xid must be invisible and
						// concurrent to a snapshot taken now.
						snap := m.TakeSnapshot()
						if snap.Sees(x) {
							t.Errorf("snapshot sees in-progress xid %d", x)
						}
						if !snap.ConcurrentWith(x) {
							t.Errorf("in-progress xid %d not concurrent", x)
						}
						m.Abort(x)
						if m.Visible(x, m.TakeSnapshot()) {
							t.Errorf("aborted xid %d visible", x)
						}
						m.Abort(pin)
						continue
					}
					// A snapshot taken before the commit must never
					// see it...
					before := m.TakeSnapshot()
					seq := m.Commit(x)
					if before.Sees(x) {
						t.Errorf("pre-commit snapshot sees xid %d", x)
					}
					// ...and one taken after always does.
					if after := m.TakeSnapshot(); !after.Sees(x) {
						t.Errorf("post-commit snapshot misses xid %d (seq %d, snap %d)", x, seq, after.SeqNo)
					}
					m.Abort(pin)
					ring.push(x, seq)
				}
			}(w)
		}

		for w := 0; w < snapshotters; w++ {
			auxWG.Add(1)
			go func() {
				defer auxWG.Done()
				var buf []commitPair
				for !stop.Load() && !t.Failed() {
					pin := m.Begin()
					snap := m.TakeSnapshot()
					buf = ring.sample(buf)
					for _, e := range buf {
						if e.seq <= snap.SeqNo {
							if !snap.Sees(e.xid) {
								t.Errorf("snapshot CSN %d treats committed xid %d (seq %d) as in-progress", snap.SeqNo, e.xid, e.seq)
							}
							if snap.ConcurrentWith(e.xid) {
								t.Errorf("snapshot CSN %d calls included commit %d concurrent", snap.SeqNo, e.xid)
							}
						} else if snap.Sees(e.xid) {
							t.Errorf("snapshot CSN %d sees future commit %d (seq %d)", snap.SeqNo, e.xid, e.seq)
						}
					}
					m.Abort(pin)
				}
			}()
		}

		// The reclaimer stand-in: advance the truncation floor
		// continuously while snapshots and commits race it.
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for !stop.Load() {
				m.AutoTruncate()
			}
		}()

		commitWG.Wait()
		stop.Store(true)
		auxWG.Wait()

		if m.ActiveCount() != 0 {
			t.Fatalf("active = %d, want 0", m.ActiveCount())
		}
		// Everything is finished: the floor can reach the frontier, and
		// a final snapshot sees every committed xid.
		m.AutoTruncate()
		final := m.TakeSnapshot()
		for _, e := range ring.sample(nil) {
			if !m.Visible(e.xid, final) {
				t.Fatalf("final snapshot misses committed xid %d", e.xid)
			}
		}
	})
}
