GO ?= go
SSILINT := bin/ssilint

.PHONY: all build test lint fmt clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs stock vet plus ssilint, the repo's own invariant checker
# (lock acquisition order, constructor resource leaks, enum switch
# exhaustiveness — see docs/invariants.md). The tool is rebuilt from
# source on demand; -vettool hands it every package via vet's driver,
# so _test.go files are covered too.
lint: $(SSILINT)
	$(GO) vet ./...
	$(GO) vet -vettool=$(SSILINT) ./...

$(SSILINT): $(wildcard cmd/ssilint/*.go internal/lint/*.go internal/lint/load/*.go)
	@mkdir -p bin
	$(GO) build -o $@ ./cmd/ssilint

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

clean:
	rm -rf bin
